"""Compact shard wire codec: what crosses the process-pool boundary.

A :class:`~repro.core.runner.ShardResult` shipped back through a
process pool is pickled with default semantics: every
``AttemptRecord`` drags its nested frozen dataclasses
(``Identity`` → ``PostalAddress``, ``CrawlOutcome``) through the
generic reduce protocol, repeating field names and class references,
and the same ``Identity`` is re-walked for every attempt that used it.
This module flattens the result into typed tuples over two intern
tables — one for strings, one for identities (keyed by
``identity_id``) — and ships a single ``pickle.dumps`` of that flat
structure, so the bytes-on-wire per shard drop and the pool only ever
pickles a ``bytes`` blob.

The codec is **lossless by construction**: ``decode(encode(r))``
rebuilds an equal ``ShardResult`` field for field (enums round-trip
through their ``.value``), which the hypothesis property tests in
``tests/perf/test_wire.py`` pin.  It carries a schema number so a
mixed-version pool fails loudly instead of mis-decoding.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import TYPE_CHECKING

from repro.core.campaign import AttemptRecord, CampaignStats
from repro.crawler.outcomes import CrawlOutcome, TerminationCode
from repro.faults.report import FaultReport
from repro.identity.passwords import PasswordClass
from repro.identity.records import Identity, PostalAddress
from repro.obs.journal import ShardObservation
from repro.obs.tracing import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.core.runner import ShardResult

#: Bump on any change to the flat layout below; decoders check it.
WIRE_SCHEMA = 1


class Interner:
    """Assigns dense indices to values, first-seen order.

    Shared with :mod:`repro.store.rows` — the persistent world store
    uses the same interned-row-tuple shape per on-disk page that this
    codec uses per shard blob.
    """

    __slots__ = ("table", "index")

    def __init__(self):
        self.table: list = []
        self.index: dict = {}

    def add(self, value) -> int:
        got = self.index.get(value)
        if got is not None:
            return got
        position = len(self.table)
        self.table.append(value)
        self.index[value] = position
        return position


#: Backwards-compatible private alias.
_Interner = Interner


def encode_identity_row(identity: Identity, strings: Interner) -> tuple:
    s = strings.add
    a = identity.address
    return (
        identity.identity_id,
        s(identity.first_name),
        s(identity.last_name),
        s(identity.gender),
        identity.date_of_birth,
        s(a.street),
        s(a.city),
        s(a.state),
        s(a.zip_code),
        s(identity.phone),
        s(identity.employer),
        s(identity.email_local),
        s(identity.email_domain),
        s(identity.password),
        s(identity.password_class.value),
    )


def decode_identity_row(row: tuple, strings: list) -> Identity:
    return Identity(
        identity_id=row[0],
        first_name=strings[row[1]],
        last_name=strings[row[2]],
        gender=strings[row[3]],
        date_of_birth=row[4],
        address=PostalAddress(
            street=strings[row[5]],
            city=strings[row[6]],
            state=strings[row[7]],
            zip_code=strings[row[8]],
        ),
        phone=strings[row[9]],
        employer=strings[row[10]],
        email_local=strings[row[11]],
        email_domain=strings[row[12]],
        password=strings[row[13]],
        password_class=PasswordClass(strings[row[14]]),
    )


def encode_outcome_row(outcome: CrawlOutcome, strings: _Interner) -> tuple:
    s = strings.add
    return (
        s(outcome.site_host),
        s(outcome.url),
        s(outcome.code.value),
        s(outcome.detail),
        outcome.exposed_email,
        outcome.exposed_password,
        outcome.pages_loaded,
        outcome.started_at,
        outcome.finished_at,
        tuple(s(name) for name in outcome.filled_fields),
    )


def decode_outcome_row(row: tuple, strings: list) -> CrawlOutcome:
    return CrawlOutcome(
        site_host=strings[row[0]],
        url=strings[row[1]],
        code=TerminationCode(strings[row[2]]),
        detail=strings[row[3]],
        exposed_email=row[4],
        exposed_password=row[5],
        pages_loaded=row[6],
        started_at=row[7],
        finished_at=row[8],
        filled_fields=tuple(strings[i] for i in row[9]),
    )


def _encode_attempt(
    attempt: AttemptRecord, strings: _Interner, identities: _Interner
) -> tuple:
    s = strings.add
    return (
        s(attempt.site_host),
        attempt.rank,
        s(attempt.url),
        identities.add(attempt.identity),
        s(attempt.password_class.value),
        encode_outcome_row(attempt.outcome, strings),
        attempt.manual,
        attempt.registered_at,
    )


def _decode_attempt(row: tuple, strings: list, identities: list) -> AttemptRecord:
    return AttemptRecord(
        site_host=strings[row[0]],
        rank=row[1],
        url=strings[row[2]],
        identity=identities[row[3]],
        password_class=PasswordClass(strings[row[4]]),
        outcome=decode_outcome_row(row[5], strings),
        manual=row[6],
        registered_at=row[7],
    )


def _counter_tuple(record) -> tuple:
    """A counter dataclass as its field-value tuple (all ints)."""
    return tuple(
        getattr(record, f.name) for f in dataclasses.fields(record)
    )


def _encode_observation(obs: ShardObservation, strings: _Interner) -> tuple:
    s = strings.add
    return (
        obs.shard_index,
        obs.counters,
        obs.gauges,
        obs.histograms,
        [
            (sp.index, sp.parent, s(sp.name), sp.start, sp.end, sp.attrs)
            for sp in obs.spans
        ],
        [
            (ev.time, s(ev.component), s(ev.message), ev.attrs)
            for ev in obs.events
        ],
    )


def _decode_observation(row: tuple, strings: list) -> ShardObservation:
    from repro.obs import EventRecord

    return ShardObservation(
        shard_index=row[0],
        counters=row[1],
        gauges=row[2],
        histograms=row[3],
        spans=[
            SpanRecord(sp[0], sp[1], strings[sp[2]], sp[3], sp[4], sp[5])
            for sp in row[4]
        ],
        events=[
            EventRecord(ev[0], strings[ev[1]], strings[ev[2]], ev[3])
            for ev in row[5]
        ],
    )


def encode_shard_result(result: "ShardResult") -> tuple:
    """Flatten a shard result into the schema-versioned wire tuple."""
    strings = _Interner()
    identities = _Interner()
    site_attempts = [
        (
            position,
            [_encode_attempt(a, strings, identities) for a in attempts],
        )
        for position, attempts in result.site_attempts
    ]
    # Identity rows are encoded after the attempts so the intern table
    # is complete; rows land in first-reference order.
    identity_rows = [encode_identity_row(i, strings) for i in identities.table]
    observation = (
        _encode_observation(result.observation, strings)
        if result.observation is not None
        else None
    )
    return (
        WIRE_SCHEMA,
        result.shard_index,
        strings.table,
        identity_rows,
        site_attempts,
        _counter_tuple(result.stats),
        _counter_tuple(result.telemetry),
        _counter_tuple(result.fault_report),
        observation,
    )


def decode_shard_result(wire: tuple) -> "ShardResult":
    """Rebuild a :class:`ShardResult` from its wire tuple."""
    from repro.core.runner import ShardResult, ShardTelemetry

    if not wire or wire[0] != WIRE_SCHEMA:
        raise ValueError(
            f"unsupported wire schema {wire[0] if wire else None!r} "
            f"(codec supports {WIRE_SCHEMA})"
        )
    (_, shard_index, strings, identity_rows, site_attempts,
     stats, telemetry, fault_report, observation) = wire
    identity_table = [decode_identity_row(row, strings) for row in identity_rows]
    return ShardResult(
        shard_index=shard_index,
        site_attempts=[
            (
                position,
                [_decode_attempt(row, strings, identity_table) for row in rows],
            )
            for position, rows in site_attempts
        ],
        stats=CampaignStats(*stats),
        telemetry=ShardTelemetry(*telemetry),
        fault_report=FaultReport(*fault_report),
        observation=(
            _decode_observation(observation, strings)
            if observation is not None
            else None
        ),
    )


def encode_shard_bytes(result: "ShardResult") -> bytes:
    """A shard result as one compact bytes blob.

    ``len()`` of the return value is the exact bytes-on-wire for the
    shard: the pool afterwards pickles only a ``bytes`` object, whose
    framing overhead is constant.
    """
    return pickle.dumps(encode_shard_result(result), protocol=pickle.HIGHEST_PROTOCOL)


def decode_shard_bytes(data: bytes) -> "ShardResult":
    """Inverse of :func:`encode_shard_bytes`."""
    return decode_shard_result(pickle.loads(data))


def pickled_size(result: "ShardResult") -> int:
    """Reference size: default pickling of the full object graph."""
    return len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


# -- stuffing-wave payloads -------------------------------------------------

#: Bump on any change to the stuffing wave layout; decoders check it.
STUFFING_WIRE_SCHEMA = 1


def encode_stuffing_wave(result, strings: Interner) -> tuple:
    """One :class:`~repro.attacker.stuffing.StuffingWaveResult`, flat.

    Hosts and channel names intern (campaign waves repeat them); the
    ``hit_users`` column ships as its raw ``array('q')`` bytes instead
    of a pickled list of ints.
    """
    s = strings.add
    return (
        result.wave,
        result.site_rank,
        s(result.site_host),
        s(result.method),
        s(result.acquisition),
        result.candidates,
        result.attempts,
        result.successes,
        result.bad_passwords,
        result.throttled,
        result.hit_users.tobytes(),
        tuple(
            (t.target_rank, t.candidates, t.hits) for t in result.site_targets
        ),
    )


def decode_stuffing_wave(row: tuple, strings: list):
    from array import array

    from repro.attacker.stuffing import SiteTargetReport, StuffingWaveResult

    hit_users = array("q")
    hit_users.frombytes(row[10])
    return StuffingWaveResult(
        wave=row[0],
        site_rank=row[1],
        site_host=strings[row[2]],
        method=strings[row[3]],
        acquisition=strings[row[4]],
        candidates=row[5],
        attempts=row[6],
        successes=row[7],
        bad_passwords=row[8],
        throttled=row[9],
        hit_users=hit_users,
        site_targets=[
            SiteTargetReport(target_rank=t[0], candidates=t[1], hits=t[2])
            for t in row[11]
        ],
    )


def encode_stuffing_bytes(waves) -> bytes:
    """A campaign's wave results as one compact bytes blob."""
    strings = Interner()
    rows = [encode_stuffing_wave(w, strings) for w in waves]
    return pickle.dumps(
        (STUFFING_WIRE_SCHEMA, strings.table, rows),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_stuffing_bytes(data: bytes) -> list:
    """Inverse of :func:`encode_stuffing_bytes`."""
    wire = pickle.loads(data)
    if not wire or wire[0] != STUFFING_WIRE_SCHEMA:
        raise ValueError(
            f"unsupported stuffing wire schema {wire[0] if wire else None!r} "
            f"(codec supports {STUFFING_WIRE_SCHEMA})"
        )
    _, strings, rows = wire
    return [decode_stuffing_wave(row, strings) for row in rows]
