"""The hot-path performance layer: caches, fused matchers, perf suite.

The layer is pure memoization and algorithmic fusion over functions
that are already deterministic — it may never change an output bit.
``repro.perf.caching`` holds the shared switch and cache registry;
``repro.perf.suite`` is the named benchmark suite behind both
``repro perf`` and ``benchmarks/perfsuite.py``.
"""

from repro.perf.caching import (
    LruCache,
    cache_stats,
    clear_all_caches,
    enabled,
    register_clearer,
    set_enabled,
)

__all__ = [
    "LruCache",
    "cache_stats",
    "clear_all_caches",
    "enabled",
    "register_clearer",
    "set_enabled",
]
