"""Hot-path cache infrastructure.

Every cache in the performance layer goes through this module so one
switch controls them all.  The contract each cache must honor:

- **Pure memoization only.**  A cache may be keyed solely on inputs
  that fully determine the memoized output; with the layer disabled
  (``REPRO_PERF_DISABLE=1`` or :func:`set_enabled`), every call takes
  the original code path and produces byte-identical results.
- **Per-process, no invalidation protocol.**  Keys embed every input
  (e.g. the full ``SiteSpec`` field tuple), so a mutated input simply
  misses; stale entries age out of the bounded LRU.
- **No shared mutable values.**  Cached values are either immutable
  (rendered HTML strings, ``(meaning, score)`` tuples) or cloned on
  every hit (parsed DOM trees).

See DESIGN.md's "Performance model" section for the cache-by-cache key
and safety argument.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Hashable

#: Master switch.  Default on; the environment variable and
#: :func:`set_enabled` exist for the perf suite's baseline runs and for
#: debugging ("is the cache lying to me?" — it must never be).
_ENABLED = os.environ.get("REPRO_PERF_DISABLE", "") in ("", "0")

#: Every LruCache ever constructed, by name, for stats and clearing.
_REGISTRY: dict[str, "LruCache"] = {}

#: Clear callbacks for caches not built on LruCache (functools caches).
_CLEARERS: list[Callable[[], None]] = []


def enabled() -> bool:
    """Whether the hot-path optimization layer is active."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Toggle the layer (used by the perf suite's baseline runs).

    Disabling also clears every registered cache so a later re-enable
    starts cold — keeping A/B timings honest.
    """
    global _ENABLED
    _ENABLED = bool(value)
    if not _ENABLED:
        clear_all_caches()


def register_clearer(clear: Callable[[], None]) -> None:
    """Register a clear callback for an external (functools) cache."""
    _CLEARERS.append(clear)


def clear_all_caches() -> None:
    """Empty every cache in the layer (tests and baseline timing)."""
    for cache in _REGISTRY.values():
        cache.clear()
    for clear in _CLEARERS:
        clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/eviction/size counters for every named cache."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


class LruCache:
    """A small bounded mapping with least-recently-used eviction.

    Values are returned as stored — callers that cache mutable objects
    must clone on hit (see the DOM cache in ``repro.html.browser``).
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int, name: str):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        _REGISTRY[name] = self

    def get(self, key: Hashable) -> object | None:
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Empty the cache AND reset its counters.

        A/B runs toggle the layer via :func:`set_enabled` (which clears
        every cache); counters must restart from zero so the optimized
        leg's hit rates aren't polluted by the baseline leg.
        """
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
        }
