"""The campaign daemon: a checkpointable sim-clock service loop.

Where ``repro campaign`` runs one crawl and exits, the daemon runs the
deployment the paper actually operated: registration waves staggered
across scheduler epochs, recurring re-login probes, incremental
telemetry-dump ingestion with retention-gap semantics, and account
lifecycle churn — all as events on the service world's sim clock.

Determinism contract
--------------------

The daemon's output — journal bytes, merged attempts, the monitor's
detection digest — is a pure function of its
:class:`~repro.service.scheduler.ServiceConfig`'s sim-shaping fields.
Two properties carry the contract:

- **Crawl epochs are pure.** Each epoch's shard plans come from
  :meth:`CampaignRunner.plan` (no shared state with the service
  world), so each epoch is bit-identical for any worker count, and a
  completed epoch's :class:`~repro.core.runner.ShardResult`\\ s can be
  stored in a checkpoint via the lossless wire codec.
- **The service world is replayable.** Probes, lifecycle churn and
  dump ingestion depend only on the config, never on crawl results, so
  a resumed daemon rebuilds service state by replaying the epoch loop
  from epoch 0 — checkpointed epochs swap the runner dispatch for the
  stored blobs; everything else re-fires identically.

Hence the resume guarantee: a daemon killed at any epoch boundary and
restarted from its checkpoint finishes with a journal **byte-identical**
to an uninterrupted run's, for any worker count on either side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.campaign import AttemptRecord, CampaignStats
from repro.core.monitor import CompromiseMonitor
from repro.core.runner import (
    CampaignRunner,
    ShardResult,
    ShardTelemetry,
    merge_shard_results,
)
from repro.core.substrate import WorldShard
from repro.core.system import TripwireSystem
from repro.faults.report import FaultReport
from repro.identity.passwords import PasswordClass
from repro.obs.health import HealthCheck
from repro.obs.journal import RunJournal, ShardObservation
from repro.obs.live import FlightRecorder, ServiceFlightProbe
from repro.obs.merge import sum_counter_dataclasses
from repro.perf.caching import cache_stats
from repro.service.checkpoint import Checkpoint, config_digest, save_checkpoint
from repro.service.lifecycle import AccountLifecycle, LifecycleStats
from repro.service.scheduler import EpochScheduler, ServiceConfig
from repro.util.rngtree import RngTree
from repro.util.timeutil import SimInstant
from repro.web.population import RankedSite


@dataclass
class EpochReport:
    """What one scheduler epoch did (operator-facing, not journaled)."""

    epoch: int
    window: tuple[SimInstant, SimInstant]
    sites: int
    attempts: int
    exposed: int
    service_events: int
    #: True when this epoch's crawl came from a checkpoint blob rather
    #: than a live dispatch (resume replay).
    replayed: bool = False
    checkpointed: bool = False


@dataclass
class ServiceRunResult:
    """Everything a finished (or interrupted) service run produced."""

    config: ServiceConfig
    reports: list[EpochReport]
    attempts: list[AttemptRecord]
    stats: CampaignStats
    telemetry: ShardTelemetry
    fault_report: FaultReport
    lifecycle: LifecycleStats
    #: Stable digest of the monitor's full detection state; resumed and
    #: uninterrupted runs must agree on it.
    detection_digest: str
    journal: RunJournal | None
    epochs_completed: int
    interrupted: bool
    detected_sites: int = 0
    #: Per-wave stuffing records (dispatch-independent — identical
    #: batched or per-event); input to the cross-site correlation
    #: analysis, together with the campaign's reuse model (None when
    #: the stuffing stream is off).
    stuffing_waves: list = field(default_factory=list)
    stuffing_model: object | None = None
    #: Live process-local gauges read at loop exit (engine path mix,
    #: backpressure-queue accounting, provider state sizes).  Operator
    #: surface only — never journaled.
    live_stats: dict | None = None

    def exposed_attempts(self) -> list[AttemptRecord]:
        """Attempts where an identity was burned."""
        return [a for a in self.attempts if a.exposed]


class CampaignDaemon:
    """Drives the epoch loop: crawl waves, service events, checkpoints.

    One :class:`~repro.core.runner.CampaignRunner` with a persistent
    pool serves every epoch, so worker processes keep their warm world
    caches across dispatches (the PR-5 pools, now reused across
    epochs).  :meth:`request_stop` (wired to SIGTERM/SIGINT by the CLI)
    lets the in-flight epoch finish, checkpoints it, and exits the loop
    — a *graceful* stop; a hard kill merely loses epochs after the last
    checkpoint, which a resume re-runs from their pure plans.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        checkpoint_path: str | Path | None = None,
        flight_path: str | Path | None = None,
    ):
        self.config = config
        self.scheduler = EpochScheduler(config)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        #: Where the flight recorder flushes each epoch's snapshot
        #: (None = recorder off, zero overhead).
        self.flight_path = Path(flight_path) if flight_path else None
        self._stop_requested = False

    def request_stop(self) -> None:
        """Ask the epoch loop to stop after the in-flight epoch."""
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        """Whether a graceful stop is pending."""
        return self._stop_requested

    # -- construction helpers ---------------------------------------------

    def ranked_sites(self) -> list[RankedSite]:
        """The full ranked list the waves are staggered over.

        Substrate-only (no apparatus), same as the batch CLI: every
        crawl shard regenerates identical specs from the root seed.
        With a world store configured, the listing comes off disk pages
        instead — same hosts, same order, no population build.
        """
        cfg = self.config
        if cfg.world_store is not None:
            from repro.store import open_world_store

            store = open_world_store(cfg.world_store)
            store.require_world(cfg.seed, cfg.population_size)
            return store.ranked_top(cfg.top)
        listing = WorldShard(RngTree(cfg.seed)).build_population(cfg.population_size)
        return listing.alexa_top(cfg.top)

    def _build_service_world(self) -> tuple[TripwireSystem, CompromiseMonitor]:
        """The daemon's own world: provider, honey accounts, monitor.

        Namespaced ``("service",)`` so its identities never collide
        with any crawl shard's, in any epoch.
        """
        cfg = self.config
        system = TripwireSystem(
            seed=cfg.seed,
            population_size=cfg.population_size,
            retention_days=cfg.retention_days,
            start=cfg.start,
            apparatus_namespace=("service",),
            fault_plan=cfg.fault_plan,
            obs_enabled=True,
        )
        # Provisioning order is part of the deterministic surface:
        # honey hard, honey easy, unused (split), then controls.
        system.provision_identities(cfg.hard_accounts, PasswordClass.HARD)
        system.provision_identities(cfg.easy_accounts, PasswordClass.EASY)
        system.provision_identities(cfg.unused_accounts // 2, PasswordClass.HARD)
        system.provision_identities(
            cfg.unused_accounts - cfg.unused_accounts // 2, PasswordClass.EASY
        )
        system.provision_control_accounts(cfg.control_accounts)
        monitor = CompromiseMonitor(
            system.pool, system.control_locals, system.provider.domain
        )
        return system, monitor

    def _build_runner(self) -> CampaignRunner:
        cfg = self.config
        return CampaignRunner(
            seed=cfg.seed,
            population_size=cfg.population_size,
            shards=cfg.shards,
            workers=cfg.workers,
            executor=cfg.executor,
            policy=cfg.policy,
            start=cfg.start,
            fault_plan=cfg.fault_plan,
            obs_enabled=True,
            warm_workers=cfg.warm_workers,
            wire_codec=cfg.wire_codec,
            persistent_pool=True,
            world_store=cfg.world_store,
        )

    # -- the service loop --------------------------------------------------

    def run(self, resume: Checkpoint | None = None) -> ServiceRunResult:
        """Run (or resume) the daemon to its horizon or a graceful stop.

        ``resume`` replays checkpointed epochs from their stored shard
        blobs instead of dispatching them; the service world replays
        identically either way, so the final state matches an
        uninterrupted run bit for bit.
        """
        cfg = self.config
        digest = config_digest(cfg)
        if resume is not None and resume.config_digest != digest:
            raise ValueError("checkpoint belongs to a different sim config")
        checkpoint = resume if resume is not None else Checkpoint(config_digest=digest)

        sites = self.ranked_sites()
        system, monitor = self._build_service_world()
        lifecycle = AccountLifecycle(system, monitor, cfg, self.scheduler.horizon)
        lifecycle.install()
        log = system.obs.get_logger("service.daemon")

        probe = None
        health = None
        health_log = None
        recorder = None
        if self.flight_path is not None:
            recorder = FlightRecorder(self.flight_path, cfg.sim_meta())
            probe = ServiceFlightProbe(
                recorder, system, monitor, lifecycle, self.scheduler
            )
            health = HealthCheck.for_config(cfg.epoch_length)
            # Health verdicts are journaled: their inputs are
            # sim-derived snapshot slices, so the events hold the
            # executor/resume byte-identity contract.
            health_log = system.obs.get_logger("service.health")

        reports: list[EpochReport] = []
        all_shard_results: list[ShardResult] = []
        attempts: list[AttemptRecord] = []
        stats_parts: list[CampaignStats] = []
        telemetry_parts: list[ShardTelemetry] = []
        fault_parts: list[FaultReport] = []
        saved_epochs = resume.epochs_completed if resume is not None else 0
        interrupted = False

        with self._build_runner() as runner:
            for epoch in range(cfg.epochs):
                replay = epoch < checkpoint.epochs_completed
                if self._stop_requested and not replay:
                    interrupted = True
                    break
                window = self.scheduler.window(epoch)
                wave = self.scheduler.wave_sites(sites, epoch)

                # Service events due before the wave opens fire first —
                # probes, churn and ingestion are interleaved *between*
                # crawls exactly as a live deployment would see them.
                events_before = system.queue.run_until(window[0])

                epoch_started = time.perf_counter()
                if replay:
                    shard_results = checkpoint.epoch_results[epoch]
                else:
                    plans = runner.plan(wave, epoch=epoch, start=window[0])
                    dispatch = runner.execute(
                        plans, sites_count=len(wave), build_journal=False
                    )
                    shard_results = dispatch.shard_results
                    checkpoint.record_epoch(shard_results)
                dispatch_seconds = time.perf_counter() - epoch_started

                epoch_attempts, epoch_stats, epoch_telemetry, epoch_faults = (
                    merge_shard_results(shard_results)
                )
                all_shard_results.extend(shard_results)
                attempts.extend(epoch_attempts)
                stats_parts.append(epoch_stats)
                telemetry_parts.append(epoch_telemetry)
                fault_parts.append(epoch_faults)

                checkpointed = False
                due = (
                    checkpoint.epochs_completed % cfg.checkpoint_every == 0
                    or epoch == cfg.epochs - 1
                    or self._stop_requested
                )
                if (
                    self.checkpoint_path is not None
                    and checkpoint.epochs_completed > saved_epochs
                    and due
                ):
                    save_checkpoint(checkpoint, self.checkpoint_path)
                    saved_epochs = checkpoint.epochs_completed
                    checkpointed = True

                reports.append(
                    EpochReport(
                        epoch=epoch,
                        window=window,
                        sites=len(wave),
                        attempts=len(epoch_attempts),
                        exposed=sum(1 for a in epoch_attempts if a.exposed),
                        service_events=events_before,
                        replayed=replay,
                        checkpointed=checkpointed,
                    )
                )
                # Journaled — must not mention replay/checkpoint state,
                # which may differ between a resumed and a fresh run.
                log.info("epoch complete", epoch=epoch, sites=len(wave))

                if probe is not None:
                    # Flushed for replayed epochs too: a resumed
                    # daemon's flight file re-covers epochs 0..k and
                    # ends up byte-identical to an uninterrupted run's
                    # (the snapshot reads only replay-invariant state).
                    snapshot = probe.snapshot(epoch, epoch_faults)
                    statuses = health.evaluate(snapshot)
                    for status in statuses:
                        health_log.info(
                            f"health.{status.rule}",
                            status=status.status,
                            **status.detail_dict(),
                        )
                    recorder.flush(snapshot, statuses)
                    # Wall-clock profiling: side channel only, and the
                    # replay flag may legitimately differ across
                    # resumes — nothing here feeds deterministic bytes.
                    recorder.profile({
                        "epoch": epoch,
                        "replayed": replay,
                        "dispatch_seconds": round(dispatch_seconds, 6),
                        "service_events": events_before,
                        "logins_per_second": (
                            round(
                                lifecycle.stats.traffic_logins / dispatch_seconds,
                                1,
                            )
                            if dispatch_seconds > 0
                            else None
                        ),
                        "caches": cache_stats(),
                    })

        if not interrupted:
            # Drain the service tail: every remaining probe, churn and
            # ingestion event up to the horizon, then retire whatever
            # recurring chains survive (cancel is exercised on every
            # graceful shutdown, not just interrupted ones).
            system.queue.run_until(self.scheduler.horizon)
        lifecycle.cancel_all()

        stats = sum_counter_dataclasses(CampaignStats, stats_parts)
        telemetry = sum_counter_dataclasses(ShardTelemetry, telemetry_parts)
        fault_report = sum_counter_dataclasses(FaultReport, fault_parts)

        journal = None
        if not interrupted:
            journal = self._build_journal(system, all_shard_results)

        return ServiceRunResult(
            config=cfg,
            reports=reports,
            attempts=attempts,
            stats=stats,
            telemetry=telemetry,
            fault_report=fault_report,
            lifecycle=lifecycle.stats,
            detection_digest=monitor.detection_digest(),
            journal=journal,
            epochs_completed=len(reports),
            interrupted=interrupted,
            detected_sites=monitor.site_count(),
            stuffing_waves=list(lifecycle.stuffing_results),
            stuffing_model=lifecycle.reuse_model,
            live_stats={
                "engine": system.provider.batch_engine_stats(),
                "queue": lifecycle.queue_stats(),
                "stuffing_queue": lifecycle.stuffing_queue_stats(),
                "provider": system.provider.login_state_sizes(),
            },
        )

    def _build_journal(
        self, system: TripwireSystem, shard_results: list[ShardResult]
    ) -> RunJournal:
        """One journal for the whole run: crawl shards + service world.

        Crawl captures keep their globally unique shard indices
        (``epoch * shards + k``); the service world's capture takes the
        slot after every possible crawl shard.  Meta is
        :meth:`ServiceConfig.sim_meta` — worker-count-invariant by
        construction, so journal bytes are stable across executors and
        across interrupted-and-resumed runs.
        """
        cfg = self.config
        captures = [
            r.observation for r in shard_results if r.observation is not None
        ]
        captures.append(
            ShardObservation.capture(system.obs, cfg.epochs * cfg.shards)
        )
        return RunJournal(cfg.sim_meta(), captures)
