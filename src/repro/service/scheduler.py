"""Service-mode configuration and the sim-clock epoch scheduler.

An epoch is the daemon's unit of dispatch and checkpointing: a fixed
window of sim time in which one staggered registration wave is crawled
while the recurring service events (probes, lifecycle churn, telemetry
ingestion) fire on their own intervals.  Epoch boundaries are where
checkpoints land and where a resumed run re-enters, so every quantity
here is a pure function of the :class:`ServiceConfig` — nothing about
epochs depends on wall clock, worker count or executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.campaign import RegistrationPolicy
from repro.faults.plan import FaultPlan
from repro.util.timeutil import DAY, HOUR, STUDY_START, SimInstant
from repro.web.population import RankedSite


@dataclass
class ServiceConfig:
    """Everything that shapes a service-mode run.

    Fields are split between *sim-shaping* knobs (seed, population,
    epochs, intervals, account counts — these go into the journal meta
    and the checkpoint digest) and *execution-shaping* knobs (workers,
    executor, warm caches — these may differ between the original and
    the resumed run without moving a byte of output).
    """

    # -- sim-shaping ------------------------------------------------------
    seed: int = 7
    population_size: int = 3000
    top: int = 200  # ranked sites crawled across the whole run
    shards: int = 4
    policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST
    start: SimInstant = STUDY_START
    epochs: int = 4
    epoch_length: int = 30 * DAY
    retention_days: int = 60
    #: Recurring-event intervals (sim seconds).
    probe_interval: int = 7 * DAY       # control-account re-login probes
    dump_interval: int = 20 * DAY       # telemetry-dump ingestion
    bind_interval: int = 3 * DAY        # honey-account ↔ site binding
    freeze_interval: int = 23 * DAY     # provider freezes an account
    reset_interval: int = 37 * DAY      # operator rotates a password
    attack_interval: int = 5 * DAY      # attacker accesses a bound account
    recover_delay: int = 4 * DAY        # support-desk recovery after a freeze
    #: Service-world account block (honey + unused + control).
    hard_accounts: int = 40
    easy_accounts: int = 40
    unused_accounts: int = 20
    control_accounts: int = 4
    fault_plan: FaultPlan | None = None
    #: Drop provider telemetry no future dump can return (the
    #: continuous-operation memory bound).
    prune_telemetry: bool = True
    #: Benign-traffic population (0 disables the traffic stream).  The
    #: traffic knobs below shape *which login events exist*, so they
    #: are sim-shaping; how those events are authenticated (batched or
    #: per-event, batch size, queue depth) is execution-shaping.
    traffic_users: int = 0
    traffic_logins_per_day: float = 2.0
    traffic_mails_per_day: float = 0.5
    traffic_window: int = 6 * HOUR
    #: Credential-stuffing campaign stream (0 disables).  Requires a
    #: benign population (``traffic_users > 0``) — the reuse model and
    #: the breached corpora are derived over that population.  All of
    #: these shape which stuffed login events exist, so they are
    #: sim-shaping; the stuffing batch size and queue depth below are
    #: execution-shaping, exactly like their traffic twins.
    stuffing_interval: int = 0
    stuffing_exact_rate: float = 0.3
    stuffing_derive_rate: float = 0.3
    stuffing_site_density: float = 0.05
    stuffing_crack_rate: float = 0.6
    stuffing_targets: int = 3

    # -- execution-shaping (never in journal meta) ------------------------
    workers: int = 1
    executor: str = "serial"
    warm_workers: bool = True
    wire_codec: bool = True
    checkpoint_every: int = 1
    #: Authenticate service-stream logins through the vectorized batch
    #: engine (False falls back to per-event authentication).  Both
    #: paths produce byte-identical journals — that equivalence is the
    #: engine's contract, exercised by the login-smoke CI job.
    login_batching: bool = True
    #: Max events per traffic batch and bound of the backpressure queue
    #: between generator and login engine.  Execution-shaping: batch
    #: splitting groups the same events without reordering them, and
    #: the FIFO queue preserves window order at any depth.
    traffic_batch_events: int = 8192
    traffic_queue_depth: int = 8
    #: Stuffing-wave dispatch shaping (split/queue only, never order).
    stuffing_batch_events: int = 8192
    stuffing_queue_depth: int = 8
    #: Path of a built world store (:mod:`repro.store`), or None for
    #: in-memory worlds.  Execution-shaped: a run may be resumed with
    #: the store toggled either way and must still byte-match.
    world_store: str | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")

    def sim_meta(self) -> dict:
        """The sim-shaping facts: journal meta and checkpoint digest.

        Deliberately excludes workers, executor, warm caches and
        checkpoint cadence — a resumed run may change any of those and
        must still produce byte-identical output.
        """
        return {
            "command": "serve",
            "seed": self.seed,
            "population": self.population_size,
            "sites": self.top,
            "shards": self.shards,
            "policy": self.policy.value,
            "start": self.start,
            "epochs": self.epochs,
            "epoch_length": self.epoch_length,
            "retention_days": self.retention_days,
            "probe_interval": self.probe_interval,
            "dump_interval": self.dump_interval,
            "bind_interval": self.bind_interval,
            "freeze_interval": self.freeze_interval,
            "reset_interval": self.reset_interval,
            "attack_interval": self.attack_interval,
            "recover_delay": self.recover_delay,
            "hard_accounts": self.hard_accounts,
            "easy_accounts": self.easy_accounts,
            "unused_accounts": self.unused_accounts,
            "control_accounts": self.control_accounts,
            "fault_profile": self.fault_plan.profile if self.fault_plan else "off",
            "fault_seed": self.fault_plan.seed if self.fault_plan else 0,
            "prune_telemetry": self.prune_telemetry,
            "traffic_users": self.traffic_users,
            "traffic_logins_per_day": self.traffic_logins_per_day,
            "traffic_mails_per_day": self.traffic_mails_per_day,
            "traffic_window": self.traffic_window,
            "stuffing_interval": self.stuffing_interval,
            "stuffing_exact_rate": self.stuffing_exact_rate,
            "stuffing_derive_rate": self.stuffing_derive_rate,
            "stuffing_site_density": self.stuffing_site_density,
            "stuffing_crack_rate": self.stuffing_crack_rate,
            "stuffing_targets": self.stuffing_targets,
        }


@dataclass
class EpochScheduler:
    """Epoch windows and staggered wave slices, purely from config."""

    config: ServiceConfig
    _per_epoch: int = field(init=False, default=0)

    @property
    def horizon(self) -> SimInstant:
        """The sim instant the service run ends."""
        cfg = self.config
        return cfg.start + cfg.epochs * cfg.epoch_length

    def window(self, epoch: int) -> tuple[SimInstant, SimInstant]:
        """The half-open sim window ``[start, end)`` of one epoch."""
        cfg = self.config
        if not 0 <= epoch < cfg.epochs:
            raise ValueError(f"epoch {epoch} outside 0..{cfg.epochs - 1}")
        base = cfg.start + epoch * cfg.epoch_length
        return (base, base + cfg.epoch_length)

    def wave_sites(self, sites: list[RankedSite], epoch: int) -> list[RankedSite]:
        """The registration-wave slice for one epoch.

        The ranked list is chunked contiguously across epochs — the
        staggering the paper's deployment used instead of crawling the
        whole list at once.  Every site lands in exactly one epoch;
        later epochs absorb the remainder shortfall.
        """
        cfg = self.config
        per = -(-len(sites) // cfg.epochs)  # ceil division
        return sites[epoch * per:(epoch + 1) * per]

    def wave_positions(self, sites: list[RankedSite], epoch: int) -> int:
        """Global position offset of this epoch's wave in the full list."""
        per = -(-len(sites) // self.config.epochs)
        return epoch * per
