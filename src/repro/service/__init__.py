"""Continuous-operation service mode: the campaign as a daemon.

The paper's deployment ran for roughly two years as a managed service
— staggered registrations, periodic re-login probes, sporadic
telemetry dumps with a retention gap — where the batch reproduction
ran everything once and exited.  This package is the long-running
shape:

- :mod:`repro.service.scheduler` — epoch windows on the sim clock and
  the staggered registration-wave slices;
- :mod:`repro.service.lifecycle` — recurring re-login probes,
  incremental telemetry-dump ingestion and account lifecycle churn
  (bind/freeze/reset) as cancellable :class:`~repro.sim.events.EventQueue`
  entries;
- :mod:`repro.service.checkpoint` — wire-codec-backed epoch
  checkpoints, written atomically so a kill mid-write cannot corrupt;
- :mod:`repro.service.daemon` — the :class:`CampaignDaemon` driving it
  all: one :class:`~repro.core.runner.CampaignRunner` dispatch per
  epoch over a persistent warm worker pool, graceful SIGTERM stop,
  and deterministic resume: a daemon killed at any epoch boundary and
  restarted from its checkpoint replays to a journal byte-identical
  to the uninterrupted run, for any worker count.
"""

from repro.service.checkpoint import (
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.daemon import CampaignDaemon, EpochReport, ServiceRunResult
from repro.service.lifecycle import AccountLifecycle, LifecycleStats
from repro.service.scheduler import EpochScheduler, ServiceConfig

__all__ = [
    "AccountLifecycle",
    "CampaignDaemon",
    "Checkpoint",
    "CheckpointError",
    "EpochReport",
    "EpochScheduler",
    "LifecycleStats",
    "ServiceConfig",
    "ServiceRunResult",
    "load_checkpoint",
    "save_checkpoint",
]
