"""Recurring service events: probes, lifecycle churn, dump ingestion.

Everything the managed deployment did *between* crawls, expressed as
recurring :class:`~repro.sim.events.EventQueue` entries on the service
world's clock instead of imperative loops:

- **re-login probes** — the operator logs into every control account
  on an interval; each probe must surface in a later telemetry dump
  (the pipeline-liveness check of Section 4.2);
- **telemetry ingestion** — provider dumps are pulled and folded into
  the :class:`~repro.core.monitor.CompromiseMonitor` incrementally via
  the shared :class:`~repro.core.monitor.DumpIngestion` step, honoring
  the retention gap (dumps spaced beyond retention lose a window,
  exactly as Figure 2's shaded gap) and pruning exported telemetry so
  a multi-year daemon holds bounded state;
- **account lifecycle churn** — honey accounts are bound to sites
  (registered-and-burned), frozen by the provider's abuse desk,
  recovered and rotated through support resets; a deterministic
  attacker stream accesses bound accounts so detections flow end to
  end through dumps into the monitor.

Every action draws from its own :class:`~repro.util.rngtree.RngTree`
stream under the service apparatus namespace and touches only the
service world — never crawl-shard state — so the whole stream is a
pure function of the :class:`~repro.service.scheduler.ServiceConfig`.
That independence is what makes checkpoint/resume cheap: a resumed
daemon replays these events from scratch and lands in the identical
state without consulting the checkpoint at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacker.breach import BreachMethod
from repro.attacker.stuffing import (
    StuffingEngine,
    StuffingWaveResult,
    build_benign_corpus,
)
from repro.core.monitor import CompromiseMonitor, DumpIngestion
from repro.core.system import TripwireSystem
from repro.email_provider.batch import LoginBatch
from repro.email_provider.telemetry import METHOD_ORDER, LoginMethod
from repro.identity.passwords import PasswordClass
from repro.identity.reuse import CrossSiteReuseModel
from repro.net.ipaddr import IPv4Address
from repro.obs.live import STREAM_GAP_BOUNDS
from repro.service.scheduler import ServiceConfig
from repro.sim.events import RecurringEvent
from repro.traffic import (
    BackpressureQueue,
    BenignPopulation,
    TrafficGenerator,
    TrafficProfile,
)
from repro.util.timeutil import SimInstant

#: Access methods the attacker stream rotates through (checkers in the
#: wild used mail protocols, not webmail — Section 6.2).
_ATTACK_METHODS = (LoginMethod.IMAP, LoginMethod.POP3, LoginMethod.SMTP)


@dataclass
class LifecycleStats:
    """Counters over the recurring service streams (merge-friendly)."""

    probes: int = 0
    probe_logins: int = 0
    binds: int = 0
    bind_exhausted: int = 0
    freezes: int = 0
    recoveries: int = 0
    resets: int = 0
    attacks: int = 0
    attack_successes: int = 0
    dumps: int = 0
    traffic_windows: int = 0
    traffic_logins: int = 0
    traffic_successes: int = 0
    traffic_mails: int = 0
    stuffing_waves: int = 0
    stuffing_candidates: int = 0
    stuffing_logins: int = 0
    stuffing_successes: int = 0
    stuffing_site_hits: int = 0
    state_evictions: int = 0
    #: Per-stream firing tallies, keyed by stream label
    #: (``service.probe`` etc.): cumulative fire counts and the sim
    #: instant of the most recent fire.  This is what answers "which
    #: stream is starved" from ``serve --json`` or a flight snapshot
    #: without reading the journal.
    stream_counts: dict[str, int] = field(default_factory=dict)
    stream_last_fired: dict[str, int] = field(default_factory=dict)


class AccountLifecycle:
    """Installs and drives the recurring service-event streams."""

    def __init__(
        self,
        system: TripwireSystem,
        monitor: CompromiseMonitor,
        config: ServiceConfig,
        horizon: SimInstant,
    ):
        self.system = system
        self.monitor = monitor
        self.config = config
        self.horizon = horizon
        self.stats = LifecycleStats()
        self.ingestion = DumpIngestion(system, monitor, prune=config.prune_telemetry)
        tree = system.apparatus_tree.child("service", "lifecycle")
        self._bind_rng = tree.child("bind").rng()
        self._freeze_rng = tree.child("freeze").rng()
        self._reset_rng = tree.child("reset").rng()
        self._attack_rng = tree.child("attack").rng()
        self._log = system.obs.get_logger("service.lifecycle")
        self._bind_cursor = 0
        self.handles: list[RecurringEvent] = []
        #: Stream label -> recurrence interval, filled by install().
        self.stream_intervals: dict[str, int] = {}
        self._traffic_cursor = 0
        self._traffic_gen: TrafficGenerator | None = None
        self._traffic_queue: BackpressureQueue | None = None
        self._population: BenignPopulation | None = None
        if config.traffic_users > 0:
            # The benign haystack is part of the service world: its
            # registration (sim-shaping) happens exactly once, here,
            # before any stream fires.
            self._population = BenignPopulation(config.traffic_users)
            self._population.register_with(system.provider)
            self._traffic_gen = TrafficGenerator(
                TrafficProfile(
                    users=config.traffic_users,
                    logins_per_user_day=config.traffic_logins_per_day,
                    mails_per_user_day=config.traffic_mails_per_day,
                    window_seconds=config.traffic_window,
                    batch_events=config.traffic_batch_events,
                ),
                self._population,
                tree,
            )
            self._traffic_queue = BackpressureQueue(config.traffic_queue_depth)
        self._stuffing_engine: StuffingEngine | None = None
        self._stuffing_queue: BackpressureQueue | None = None
        self._stuffing_cursor = 0
        #: Membership/password knowledge the correlation analysis reuses.
        self.reuse_model: CrossSiteReuseModel | None = None
        #: Per-wave dispatch-independent records (analysis input).
        self.stuffing_results: list[StuffingWaveResult] = []
        if config.stuffing_interval > 0 and config.traffic_users > 0:
            # The reuse model is keyed off the lifecycle namespace (a
            # derived seed — no RNG stream consumed), so stuffed
            # credentials are a pure function of the sim-shaping
            # config, like every other event the streams produce.
            self.reuse_model = CrossSiteReuseModel.from_tree(
                tree,
                exact_rate=config.stuffing_exact_rate,
                derive_rate=config.stuffing_derive_rate,
                site_density=config.stuffing_site_density,
            )
            self._stuffing_engine = StuffingEngine(
                system.provider,
                self._population,
                self.reuse_model,
                tree,
                batch_events=config.stuffing_batch_events,
            )
            self._stuffing_queue = BackpressureQueue(config.stuffing_queue_depth)
            self._stuffing_rng = tree.child("stuffing", "campaign").rng()

    # -- installation ------------------------------------------------------

    def install(self) -> list[RecurringEvent]:
        """Schedule every recurring stream up to the horizon."""
        cfg = self.config
        queue = self.system.queue
        start = cfg.start
        streams = [
            (cfg.probe_interval, "service.probe", self._probe),
            (cfg.dump_interval, "service.ingest", self._ingest),
            (cfg.bind_interval, "service.bind", self._bind),
            (cfg.freeze_interval, "service.freeze", self._freeze),
            (cfg.reset_interval, "service.reset", self._reset),
            (cfg.attack_interval, "service.attack", self._attack),
        ]
        if cfg.traffic_users > 0:
            streams.append((cfg.traffic_window, "service.traffic", self._traffic))
        if self._stuffing_engine is not None:
            streams.append(
                (cfg.stuffing_interval, "service.stuffing", self._stuffing)
            )
        for interval, label, action in streams:
            self.stream_intervals[label] = interval
            # Seed the tally at zero so an installed-but-starved
            # stream still shows up in `serve --json` and snapshots.
            self.stats.stream_counts.setdefault(label, 0)
            self.handles.append(
                queue.schedule_recurring(
                    start + interval,
                    interval,
                    label,
                    self._tracked(label, action),
                    until=self.horizon,
                )
            )
        return self.handles

    def _tracked(self, label: str, action):
        """Wrap a stream action with firing bookkeeping.

        Records the cumulative fire count and last-fired sim instant
        (starvation telemetry), and observes the inter-fire gap into a
        ``stream.<label>.gap_seconds`` histogram.  The event queue
        fires streams at deterministic sim instants, so everything
        recorded here is executor-invariant.
        """
        stats = self.stats
        metrics = self.system.obs.metrics
        clock = self.system.clock

        def fire() -> None:
            now = clock.now()
            previous = stats.stream_last_fired.get(label)
            if previous is not None:
                metrics.observe(
                    f"stream.{label}.gap_seconds",
                    now - previous,
                    bounds=STREAM_GAP_BOUNDS,
                )
            stats.stream_counts[label] = stats.stream_counts.get(label, 0) + 1
            stats.stream_last_fired[label] = now
            action()

        return fire

    def queue_stats(self) -> dict | None:
        """Backpressure-queue accounting, or None with traffic off."""
        if self._traffic_queue is None:
            return None
        return self._traffic_queue.stats()

    def stuffing_queue_stats(self) -> dict | None:
        """The stuffing stream's own queue, or None with stuffing off."""
        if self._stuffing_queue is None:
            return None
        return self._stuffing_queue.stats()

    def cancel_all(self) -> int:
        """Revoke every still-pending recurring stream (daemon stop)."""
        return sum(1 for handle in self.handles if handle.cancel())

    # -- the streams -------------------------------------------------------

    def _probe(self) -> None:
        """Operator re-login over every control account."""
        succeeded = self.system.login_control_accounts(
            batched=self.config.login_batching
        )
        self.stats.probes += 1
        self.stats.probe_logins += succeeded
        self.system.obs.count("service.probe_logins", succeeded)

    def _ingest(self) -> None:
        """Pull the provider dump into the monitor, incrementally."""
        attributed = self.ingestion()
        self.stats.dumps = self.ingestion.dumps_ingested
        self.system.obs.count("service.dump_logins_attributed", len(attributed))
        # Batch-review housekeeping rides the ingestion cadence: drop
        # throttle/IP-window state whose horizons have fully expired.
        # Decision-invariant, so it is safe (and identical) in both
        # login engines — without it a multi-year daemon's per-login
        # state grows with every account that ever failed a password.
        evicted_throttle, evicted_windows = self.system.provider.evict_expired()
        self.stats.state_evictions += evicted_throttle + evicted_windows

    def _traffic(self) -> None:
        """One benign-traffic window: the haystack logs in and gets mail.

        The generator's batches flow through the bounded backpressure
        queue into whichever login engine the config selects; the
        decisions — and therefore every journal byte — are identical
        either way.  All events in the window occur at its close (now).
        """
        window = self._traffic_gen.window(
            self._traffic_cursor, self.system.clock.now()
        )
        self._traffic_cursor += 1
        provider = self.system.provider
        successes = 0

        if self.config.login_batching:

            def consume(batch: LoginBatch) -> None:
                nonlocal successes
                successes += provider.attempt_logins(batch).successes

        else:

            def consume(batch: LoginBatch) -> None:
                nonlocal successes
                attempt_login = provider.attempt_login
                keys, passwords = batch.keys, batch.passwords
                ips, methods = batch.ips, batch.methods
                for i in range(len(keys)):
                    result = attempt_login(
                        keys[i],
                        passwords[i],
                        IPv4Address(ips[i]),
                        METHOD_ORDER[methods[i]],
                    )
                    if result.value == "success":
                        successes += 1

        self._traffic_queue.pump(iter(window.batches), consume)

        first_row = self._population.first_row
        mails = provider.deliver_background(
            [first_row + u for u in window.mail_users]
        )

        self.stats.traffic_windows += 1
        self.stats.traffic_logins += window.login_count
        self.stats.traffic_successes += successes
        self.stats.traffic_mails += mails
        obs = self.system.obs
        obs.count("service.traffic_logins", window.login_count)
        obs.count("service.traffic_successes", successes)
        obs.count("service.traffic_mails", mails)

    def _stuffing(self) -> None:
        """One stuffing wave: breach a site, replay the haul at scale.

        The campaign stream draws — in documented order: victim rank,
        acquisition coin, then target ranks — from its own namespaced
        RNG, breaches the victim against the benign population, and
        fans the corpus out through the stuffing engine: provider
        candidates flow through the wave's backpressure queue into
        whichever login engine the config selects (byte-identical
        either way), cross-site targets are resolved from the reuse
        model directly.
        """
        cfg = self.config
        rng = self._stuffing_rng
        wave = self._stuffing_cursor
        self._stuffing_cursor += 1
        rank = 1 + rng.randrange(cfg.population_size)
        method = (
            BreachMethod.DB_DUMP
            if rng.random() < 0.5
            else BreachMethod.ONLINE_CAPTURE
        )
        targets: list[int] = []
        while len(targets) < min(cfg.stuffing_targets, cfg.population_size - 1):
            candidate = 1 + rng.randrange(cfg.population_size)
            if candidate != rank and candidate not in targets:
                targets.append(candidate)
        host = self.system.population.spec_at_rank(rank).host

        provider = self.system.provider
        # Housekeeping before the wave: throttle entries left by the
        # previous wave's failures (waves are spaced past the brute-
        # force window and lockout) would otherwise route every repeat
        # candidate through the scalar replay path.  Decision-invariant,
        # so identical in both engines.
        evicted_throttle, evicted_windows = provider.evict_expired()
        self.stats.state_evictions += evicted_throttle + evicted_windows

        corpus = build_benign_corpus(
            self.reuse_model,
            cfg.traffic_users,
            rank,
            host,
            method,
            wave=wave,
            crack_rate=cfg.stuffing_crack_rate,
        )
        engine = self._stuffing_engine
        plan = engine.plan_wave(corpus, targets=tuple(targets))

        batched = cfg.login_batching
        results = bytearray()

        def consume(batch: LoginBatch) -> None:
            results.extend(engine.dispatch_batch(batch, batched))

        self._stuffing_queue.pump(iter(plan.batches), consume)
        result = engine.collect(plan, results)
        self.stuffing_results.append(result)

        site_hits = sum(t.hits for t in result.site_targets)
        stats = self.stats
        stats.stuffing_waves += 1
        stats.stuffing_candidates += result.candidates
        stats.stuffing_logins += result.attempts
        stats.stuffing_successes += result.successes
        stats.stuffing_site_hits += site_hits
        obs = self.system.obs
        obs.count("service.stuffing_logins", result.attempts)
        obs.count("service.stuffing_successes", result.successes)
        obs.count("service.stuffing_site_hits", site_hits)
        self._log.info(
            "stuffing wave dispatched",
            wave=wave,
            host=host,
            method=method.value,
            candidates=result.candidates,
            successes=result.successes,
        )

    def _bind(self) -> None:
        """Bind one honey account to the next service-probed site.

        The continuous analogue of a registration that exposed
        credentials: an identity is checked out for a deterministic
        site and burned, making any later provider login to it
        attributable to exactly that site.
        """
        rank = 1 + (self._bind_cursor % self.config.population_size)
        self._bind_cursor += 1
        host = self.system.population.spec_at_rank(rank).host
        password_class = (
            PasswordClass.HARD if self._bind_rng.random() < 0.5 else PasswordClass.EASY
        )
        identity = self.system.pool.checkout_any(host, password_class)
        if identity is None:
            self.stats.bind_exhausted += 1
            self._log.info("bind skipped: pool exhausted", host=host)
            return
        self.system.pool.burn(identity.identity_id)
        self.stats.binds += 1
        self.system.obs.count("service.binds")
        self._log.info("account bound", host=host, local=identity.email_local)

    def _bound_locals(self) -> list[str]:
        """Email locals of bound (burned) identities, in burn order."""
        return [
            identity.email_local
            for identity, _site in self.system.pool.burned_identities()
        ]

    def _freeze(self) -> None:
        """The provider's abuse desk freezes one bound account."""
        locals_ = self._bound_locals()
        if not locals_:
            return
        local = locals_[self._freeze_rng.randrange(len(locals_))]
        if not self.system.provider.support_freeze(local):
            return
        self.stats.freezes += 1
        self.system.obs.count("service.freezes")
        self._log.info("account frozen", local=local)
        # The operator notices (the next probe/dump cycle) and recovers
        # the account through the support desk after a delay.
        recovered_password = f"Svc!{self._freeze_rng.randrange(10**8):08d}"
        self.system.queue.schedule(
            self.system.clock.now() + self.config.recover_delay,
            "service.recover",
            lambda: self._recover(local, recovered_password),
        )

    def _recover(self, local: str, new_password: str) -> None:
        if self.system.provider.support_reset(local, new_password):
            self.stats.recoveries += 1
            self.system.obs.count("service.recoveries")
            self._log.info("account recovered", local=local)

    def _reset(self) -> None:
        """Operator-driven password rotation on one bound account."""
        locals_ = self._bound_locals()
        if not locals_:
            return
        local = locals_[self._reset_rng.randrange(len(locals_))]
        new_password = f"Rot@{self._reset_rng.randrange(10**8):08d}"
        if self.system.provider.support_reset(local, new_password):
            self.stats.resets += 1
            self.system.obs.count("service.resets")
            self._log.info("password rotated", local=local)

    def _attack(self) -> None:
        """An attacker tries a bound account's original credentials.

        Successful logins land in telemetry and surface — one dump
        later — as monitor detections of the bound site.  Frozen,
        rotated or reset accounts make the attempt fail, which is the
        signal degradation a long-lived deployment actually fights.
        """
        bound = self.system.pool.burned_identities()
        if not bound:
            return
        identity, _site = bound[self._attack_rng.randrange(len(bound))]
        ip = IPv4Address(self._attack_rng.randrange(1 << 32))
        method = _ATTACK_METHODS[self._attack_rng.randrange(len(_ATTACK_METHODS))]
        if self.config.login_batching:
            receipt = self.system.provider.attempt_logins(
                LoginBatch.single(
                    identity.email_local, identity.password, ip, method
                )
            )
            succeeded = receipt.results[0] == 0
        else:
            result = self.system.provider.attempt_login(
                identity.email_local, identity.password, ip, method
            )
            succeeded = result.value == "success"
        self.stats.attacks += 1
        self.system.obs.count("service.attacks")
        if succeeded:
            self.stats.attack_successes += 1
            self.system.obs.count("service.attack_successes")
