"""Epoch checkpoints: durable resume state for the campaign daemon.

A checkpoint is a JSONL file holding exactly the state a resumed
daemon cannot cheaply recompute: the per-shard crawl results of every
completed epoch, encoded with the lossless wire codec from
:mod:`repro.perf.wire`.  Everything else — the service world, the
lifecycle streams, the monitor — is a pure function of the
:class:`~repro.service.scheduler.ServiceConfig` and is rebuilt by
replaying the epoch loop, with checkpointed epochs' crawl dispatch
swapped for the stored blobs.  Because the codec round-trips
:class:`~repro.core.runner.ShardResult` bit-for-bit, the resumed run's
journal is byte-identical to an uninterrupted run's.

Layout (one JSON object per line):

- header: ``{"record": "header", "schema": 1, "config_digest": ...,
  "epochs_completed": N}``
- shard blobs: ``{"record": "shard_blob", "epoch": e, "shard": k,
  "wire": <base64>}`` — ``shards × epochs_completed`` of them, in
  (epoch, shard) order
- footer: ``{"record": "end", "blobs": M}`` — absent on a truncated
  file, which :func:`load_checkpoint` rejects

Writes go through a temp file and :func:`os.replace`, so a kill mid
checkpoint leaves the previous checkpoint intact rather than a torn
file.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.runner import ShardResult
from repro.perf.wire import decode_shard_bytes, encode_shard_bytes
from repro.service.scheduler import ServiceConfig

#: Bump on incompatible layout changes.
CHECKPOINT_SCHEMA = 1


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, truncated or mismatched."""


def config_digest(config: ServiceConfig) -> str:
    """Digest of the sim-shaping config a checkpoint belongs to.

    Execution-shaping knobs (workers, executor, warm caches,
    checkpoint cadence) are excluded on purpose: a resume may change
    them freely.  Changing any sim-shaping knob makes stored shard
    results meaningless, so :func:`load_checkpoint` refuses.
    """
    canonical = json.dumps(config.sim_meta(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


@dataclass
class Checkpoint:
    """In-memory form: completed epochs' shard results, in order."""

    config_digest: str
    epochs_completed: int = 0
    #: ``epoch_results[e]`` is the list of that epoch's ShardResults in
    #: shard order, exactly as the runner's merger expects them.
    epoch_results: list[list[ShardResult]] = field(default_factory=list)

    def record_epoch(self, results: list[ShardResult]) -> None:
        """Append one completed epoch's shard results."""
        self.epoch_results.append(list(results))
        self.epochs_completed = len(self.epoch_results)


def save_checkpoint(checkpoint: Checkpoint, path: str | Path) -> int:
    """Write atomically (temp + rename); returns bytes written."""
    path = Path(path)
    lines = [
        json.dumps(
            {
                "record": "header",
                "schema": CHECKPOINT_SCHEMA,
                "config_digest": checkpoint.config_digest,
                "epochs_completed": checkpoint.epochs_completed,
            },
            sort_keys=True,
        )
    ]
    blobs = 0
    for epoch, results in enumerate(checkpoint.epoch_results):
        for shard, result in enumerate(results):
            wire = base64.b64encode(encode_shard_bytes(result)).decode("ascii")
            lines.append(
                json.dumps(
                    {"record": "shard_blob", "epoch": epoch, "shard": shard, "wire": wire},
                    sort_keys=True,
                )
            )
            blobs += 1
    lines.append(json.dumps({"record": "end", "blobs": blobs}, sort_keys=True))
    payload = ("\n".join(lines) + "\n").encode("ascii")
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)
    return len(payload)


def load_checkpoint(path: str | Path, config: ServiceConfig) -> Checkpoint:
    """Read and validate a checkpoint against the resuming config.

    Raises :class:`CheckpointError` on schema or config mismatch, a
    missing footer (torn write) or out-of-order blobs.
    """
    path = Path(path)
    lines = path.read_text(encoding="ascii").splitlines()
    if not lines:
        raise CheckpointError(f"{path}: empty checkpoint")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: not a checkpoint file ({exc})") from exc
    if not isinstance(header, dict):
        raise CheckpointError(f"{path}: not a checkpoint file")
    if header.get("record") != "header":
        raise CheckpointError(f"{path}: first record is not a header")
    if header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: schema {header.get('schema')} != {CHECKPOINT_SCHEMA}"
        )
    expected = config_digest(config)
    if header.get("config_digest") != expected:
        raise CheckpointError(
            f"{path}: checkpoint was taken under a different sim config "
            f"(digest {header.get('config_digest')!r} != {expected!r})"
        )
    try:
        footer = json.loads(lines[-1])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: no end marker — truncated write?") from exc
    if not isinstance(footer, dict) or footer.get("record") != "end":
        raise CheckpointError(f"{path}: no end marker — truncated write?")

    checkpoint = Checkpoint(config_digest=expected)
    epoch_results: list[list[ShardResult]] = [
        [] for _ in range(int(header.get("epochs_completed", 0)))
    ]
    blobs = 0
    for line in lines[1:-1]:
        record = json.loads(line)
        if record.get("record") != "shard_blob":
            raise CheckpointError(f"{path}: unexpected record {record.get('record')!r}")
        epoch = int(record["epoch"])
        if not 0 <= epoch < len(epoch_results):
            raise CheckpointError(f"{path}: blob for epoch {epoch} outside header range")
        if int(record["shard"]) != len(epoch_results[epoch]):
            raise CheckpointError(f"{path}: out-of-order shard blob in epoch {epoch}")
        epoch_results[epoch].append(
            decode_shard_bytes(base64.b64decode(record["wire"]))
        )
        blobs += 1
    if blobs != int(footer.get("blobs", -1)):
        raise CheckpointError(
            f"{path}: footer promises {footer.get('blobs')} blobs, found {blobs}"
        )
    if any(not results for results in epoch_results):
        raise CheckpointError(f"{path}: an epoch in the header has no blobs")
    for results in epoch_results:
        checkpoint.record_epoch(results)
    return checkpoint
