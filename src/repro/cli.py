"""Command-line interface.

    python -m repro pilot --scale 0.1 --seed 2017
    python -m repro survey --population 1500
    python -m repro demo
    python -m repro evasion --trials 20
    python -m repro perf --quick
    python -m repro campaign --obs-out journal.jsonl
    python -m repro serve --epochs 4 --checkpoint state.ckpt
    python -m repro serve --resume state.ckpt --obs-out journal.jsonl
    python -m repro serve --flight flight.jsonl --traffic-users 2000
    python -m repro obs report journal.jsonl
    python -m repro obs top flight.jsonl --once
    python -m repro obs tail flight.jsonl --follow

``pilot`` runs the full study and prints every table and figure;
``survey`` runs the Table 4 eligibility measurement; ``demo`` is the
quickstart detection walk-through; ``evasion`` sweeps the §7.3
attacker-sampling strategies; ``perf`` runs the A/B performance suite
and writes the repo-root BENCH snapshot.

``serve`` runs the campaign as a long-lived daemon on the sim clock:
registration waves staggered across epochs, recurring re-login probes,
incremental telemetry ingestion and account-lifecycle churn, with an
epoch checkpoint written to ``--checkpoint``.  SIGTERM/SIGINT stop it
gracefully after the in-flight epoch (exit code 3); ``--resume PATH``
replays the checkpointed epochs and finishes the run with output
byte-identical to an uninterrupted one.

``--obs-out PATH`` on ``pilot``/``campaign`` turns the observability
layer on for the run, writes the deterministic JSONL journal to PATH
and prints the ops report (with live cache stats); ``obs report``
re-renders the report later from a journal file alone.

``serve --flight PATH`` turns on the flight recorder: an epoch-cadence
JSONL snapshot file (atomically replaced each flush, deterministic
bytes) plus a ``PATH.wall`` wall-clock side channel.  ``obs top``
renders the latest snapshot as a dashboard (``--once`` or follow);
``obs tail`` prints flight records as they land.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tripwire (IMC 2017) reproduction: infer internet site "
                    "compromise from password-reuse attacks on honey accounts.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    pilot = commands.add_parser("pilot", help="run the year-long pilot study")
    pilot.add_argument("--scale", type=float, default=0.1,
                       help="fraction of the paper's sizes (default 0.1)")
    pilot.add_argument("--seed", type=int, default=2017)
    pilot.add_argument("--breaches", type=int, default=21,
                       help="breaches to schedule (paper detected 19)")
    _add_fault_arguments(pilot)
    _add_obs_arguments(pilot)

    survey = commands.add_parser("survey", help="eligibility survey (Table 4)")
    survey.add_argument("--population", type=int, default=1500)
    survey.add_argument("--seed", type=int, default=41)

    campaign = commands.add_parser(
        "campaign",
        help="sharded registration campaign over the ranked top list",
    )
    campaign.add_argument("--top", type=int, default=500,
                          help="ranked sites to crawl (default 500)")
    campaign.add_argument("--population", type=int, default=3000)
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--shards", type=int, default=8,
                          help="independent world shards (default 8)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="parallel shard workers (default 1)")
    campaign.add_argument("--warm-workers", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="per-worker warm world cache (site specs, identity "
                               "corpora); --no-warm-workers forces the cold "
                               "reference path (output is identical either way)")
    campaign.add_argument("--executor", choices=["serial", "thread", "process"],
                          default="process",
                          help="shard executor backend (default process)")
    campaign.add_argument("--json", type=pathlib.Path, default=None,
                          help="write a machine-readable summary here")
    _add_store_arguments(campaign)
    _add_fault_arguments(campaign)
    _add_obs_arguments(campaign)

    serve = commands.add_parser(
        "serve",
        help="continuous-operation daemon: staggered waves, recurring "
             "probes, checkpoint/resume",
    )
    serve.add_argument("--epochs", type=int, default=4,
                       help="scheduler epochs to run (default 4)")
    serve.add_argument("--epoch-days", type=int, default=30,
                       help="sim days per epoch (default 30)")
    serve.add_argument("--top", type=int, default=200,
                       help="ranked sites staggered across all epochs "
                            "(default 200)")
    serve.add_argument("--population", type=int, default=3000)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--shards", type=int, default=4,
                       help="crawl shards per epoch (default 4)")
    serve.add_argument("--workers", type=int, default=1,
                       help="parallel shard workers; the pool persists "
                            "across epochs (default 1)")
    serve.add_argument("--executor", choices=["serial", "thread", "process"],
                       default="process",
                       help="shard executor backend (default process)")
    serve.add_argument("--warm-workers", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="per-worker warm world cache, reused across "
                            "epochs (output is identical either way)")
    serve.add_argument("--checkpoint", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="write the epoch checkpoint here (atomic)")
    serve.add_argument("--checkpoint-every", type=int, default=1, metavar="K",
                       help="checkpoint every K completed epochs (default 1)")
    serve.add_argument("--resume", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="resume from a checkpoint written by --checkpoint; "
                            "implies checkpointing back to the same path")
    serve.add_argument("--traffic-users", type=int, default=0,
                       metavar="N",
                       help="benign-population size; enables the traffic "
                            "stream (default 0 = off)")
    serve.add_argument("--traffic-logins-per-day", type=float, default=2.0,
                       metavar="R",
                       help="benign logins per user per sim-day (default 2)")
    serve.add_argument("--stuffing-interval-days", type=int, default=0,
                       metavar="D",
                       help="credential-stuffing wave cadence in sim days "
                            "(default 0 = off; requires --traffic-users)")
    serve.add_argument("--stuffing-exact-rate", type=float, default=0.3,
                       metavar="R",
                       help="share of users reusing their mailbox password "
                            "verbatim at other sites (default 0.3)")
    serve.add_argument("--stuffing-derive-rate", type=float, default=0.3,
                       metavar="R",
                       help="share of users deriving per-site variants of "
                            "their mailbox password (default 0.3)")
    serve.add_argument("--stuffing-site-density", type=float, default=0.05,
                       metavar="R",
                       help="probability a user holds an account at any "
                            "given site (default 0.05)")
    serve.add_argument("--stuffing-crack-rate", type=float, default=0.6,
                       metavar="R",
                       help="share of a database dump offline cracking "
                            "recovers (default 0.6)")
    serve.add_argument("--stuffing-targets", type=int, default=3,
                       metavar="N",
                       help="cross-site fan-out targets per wave (default 3)")
    serve.add_argument("--login-batch", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="authenticate service logins through the "
                            "vectorized batch engine (journal bytes are "
                            "identical either way)")
    serve.add_argument("--json", type=pathlib.Path, default=None,
                       help="write a machine-readable summary here")
    serve.add_argument("--flight", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="flight recorder: flush a deterministic JSONL "
                            "snapshot here every epoch (wall-clock profiling "
                            "goes to PATH.wall); read it live with "
                            "'repro obs top PATH'")
    _add_store_arguments(serve)
    _add_fault_arguments(serve)
    _add_obs_arguments(serve)

    obs = commands.add_parser(
        "obs",
        help="render the ops report, dashboard or tail from saved "
             "observability files",
    )
    obs_actions = obs.add_subparsers(dest="obs_action", required=True)
    obs_report = obs_actions.add_parser(
        "report", help="pretty-print a journal written by --obs-out",
    )
    obs_report.add_argument("journal", type=pathlib.Path,
                            help="path to a journal JSONL file")
    obs_top = obs_actions.add_parser(
        "top",
        help="terminal dashboard over a flight file (live or dead): "
             "latest snapshot, health line, stream table, gauges",
    )
    obs_top.add_argument("flight", type=pathlib.Path,
                         help="path to a flight file written by serve --flight")
    obs_top.add_argument("--once", action="store_true",
                         help="render the latest snapshot once and exit "
                              "(default: follow and re-render on new flushes)")
    obs_top.add_argument("--interval", type=float, default=1.0, metavar="SEC",
                         help="follow-mode poll interval (default 1s)")
    obs_top.add_argument("--max-seconds", type=float, default=None,
                         metavar="SEC",
                         help="stop following after SEC seconds "
                              "(default: forever)")
    obs_tail = obs_actions.add_parser(
        "tail",
        help="print flight records as JSONL; --follow streams new "
             "snapshots and health verdicts as the daemon lands them",
    )
    obs_tail.add_argument("flight", type=pathlib.Path,
                          help="path to a flight file written by serve --flight")
    obs_tail.add_argument("--follow", action="store_true",
                          help="keep polling and print new records "
                               "(default: dump and exit)")
    obs_tail.add_argument("--lines", type=int, default=None, metavar="N",
                          help="print only the last N records first")
    obs_tail.add_argument("--max-seconds", type=float, default=None,
                          metavar="SEC",
                          help="stop following after SEC seconds "
                               "(default: forever)")

    commands.add_parser("demo", help="quickstart: one breach, one detection")

    evasion = commands.add_parser("evasion", help="attacker evasion sweep (§7.3)")
    evasion.add_argument("--trials", type=int, default=20)

    from repro.perf.suite import add_suite_arguments

    perf = commands.add_parser(
        "perf",
        help="A/B performance suite (caches off vs on, bit-identical)",
    )
    add_suite_arguments(perf)
    return parser


def _add_fault_arguments(command: argparse.ArgumentParser) -> None:
    from repro.faults.plan import PROFILES

    command.add_argument(
        "--fault-profile", choices=sorted(PROFILES), default="off",
        help="deterministic fault-injection profile (default off)",
    )
    command.add_argument(
        "--fault-seed", type=int, default=0,
        help="namespace for the fault RNG streams (default 0); the same "
             "world seed with a different fault seed replays the run "
             "under a different failure sequence",
    )


def _add_store_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--world-store", type=pathlib.Path, default=None, metavar="PATH",
        help="disk-backed world store directory (built on first use); "
             "shards read site specs from its pages instead of "
             "regenerating them — output is bit-identical either way",
    )


def _add_obs_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--obs-out", type=pathlib.Path, default=None, metavar="PATH",
        help="enable the observability layer, write the deterministic "
             "run journal (JSONL) here and print the ops report",
    )


def _open_or_build_store(path: pathlib.Path, seed: int, population: int):
    """Build the world store on first use, reopen (validated) after."""
    from repro.store import build_world_store

    existed = (path / "worldstore.json").is_file()
    store = build_world_store(path, seed, population)
    print(
        ("opened" if existed else "built")
        + f" world store {path} ({store.population} sites)",
        file=sys.stderr,
    )
    return store


def _fault_plan_from(args: argparse.Namespace):
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.from_profile(args.fault_profile, seed=args.fault_seed)
    return plan if plan.enabled else None


def _emit_journal(journal, path: pathlib.Path, live_stats=None) -> None:
    """Write the journal and print the live ops report below it."""
    from repro.obs.report import render_ops_report
    from repro.perf.caching import cache_stats

    journal.write(path)
    print(f"wrote journal {path}", file=sys.stderr)
    print()
    print(render_ops_report(journal.payload(), cache_stats=cache_stats(),
                            live_stats=live_stats))


def _run_pilot(args: argparse.Namespace) -> int:
    from repro.analysis.report import full_report
    from repro.core.scenario import PilotScenario, ScenarioConfig

    def scaled(value: int, minimum: int) -> int:
        return max(minimum, int(value * args.scale))

    config = ScenarioConfig(
        seed=args.seed,
        population_size=scaled(30000, 400),
        seed_list_size=scaled(1000, 50),
        main_crawl_top=scaled(25000, 300),
        second_crawl_top=scaled(30000, 400),
        manual_top=scaled(500, 20),
        breach_count=args.breaches,
        breach_hard_exposing=max(3, args.breaches // 2 + 1),
        unused_account_count=scaled(2000, 200),
        fault_plan=_fault_plan_from(args),
        obs_enabled=args.obs_out is not None,
    )
    print(f"pilot: population={config.population_size} seed={config.seed}"
          + (f" faults={args.fault_profile}/{args.fault_seed}"
             if config.fault_plan else ""),
          file=sys.stderr)
    started = time.time()
    result = PilotScenario(config).run()
    print(f"finished in {time.time() - started:.1f}s", file=sys.stderr)
    print(full_report(result))
    if config.fault_plan is not None:
        print()
        print(_fault_report_table(result.system.fault_report, args))
    if args.obs_out is not None:
        from repro.obs.journal import RunJournal

        meta = {
            "command": "pilot",
            "seed": config.seed,
            "population": config.population_size,
            "breaches": config.breach_count,
            "fault_profile": args.fault_profile,
            "fault_seed": args.fault_seed,
        }
        _emit_journal(RunJournal.from_observation(result.system.obs, meta),
                      args.obs_out)
    return 0


def _fault_report_table(report, args: argparse.Namespace) -> str:
    from repro.util.tables import render_table

    rows = [[name.replace("_", " ").capitalize(), str(value)]
            for name, value in report.as_dict().items()]
    return render_table(
        ["Fault counter", "Count"], rows,
        title=f"Injected faults (profile={args.fault_profile}, "
              f"fault-seed={args.fault_seed})",
    )


def _run_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.core.runner import CampaignRunner
    from repro.core.substrate import WorldShard
    from repro.util.rngtree import RngTree
    from repro.util.tables import render_table

    executor = args.executor
    if args.workers == 1 and executor != "serial":
        executor = "serial"

    store = None
    if args.world_store is not None:
        store = _open_or_build_store(args.world_store, args.seed, args.population)
        sites = store.ranked_top(args.top)
    else:
        # The ranked list comes from the substrate alone (no apparatus);
        # every shard regenerates identical specs from the same root seed.
        listing = WorldShard(RngTree(args.seed)).build_population(args.population)
        sites = listing.alexa_top(args.top)

    fault_plan = _fault_plan_from(args)
    print(
        f"campaign: top={len(sites)} shards={args.shards} "
        f"workers={args.workers} executor={executor}"
        + (f" store={args.world_store}" if store is not None else "")
        + (f" faults={args.fault_profile}/{args.fault_seed}" if fault_plan else ""),
        file=sys.stderr,
    )
    # Context-managed so a persistent pool is torn down even when the
    # run raises (worker processes must not outlive the command).
    with CampaignRunner(
        seed=args.seed,
        population_size=args.population,
        shards=args.shards,
        workers=args.workers,
        executor=executor,
        fault_plan=fault_plan,
        obs_enabled=args.obs_out is not None,
        obs_meta={"command": "campaign"},
        warm_workers=args.warm_workers,
        world_store=str(args.world_store) if store is not None else None,
    ) as runner:
        result = runner.run(sites)

    if store is not None:
        accounts, telemetry_rows = store.append_results(result.attempts)
        print(
            f"world store: appended {accounts} accounts, "
            f"{telemetry_rows} telemetry rows to {args.world_store}",
            file=sys.stderr,
        )

    stats, telemetry = result.stats, result.telemetry
    rows = [
        ["Sites considered", str(stats.sites_considered)],
        ["Sites filtered (shared backend)", str(stats.sites_filtered)],
        ["Registration attempts", str(stats.attempts)],
        ["Identities exposed (burned)", str(stats.exposed_attempts)],
        ["Transport requests", str(telemetry.transport_requests)],
        ["Mail messages stored", str(telemetry.mail_stored)],
        ["Verification pages fetched", str(telemetry.verification_pages_fetched)],
        ["Wall-clock seconds", f"{result.wall_seconds:.2f}"],
    ]
    print(render_table(["Metric", "Value"], rows,
                       title=f"Sharded campaign ({executor}, "
                             f"{args.shards} shards, {args.workers} workers)"))
    if fault_plan is not None:
        print()
        print(_fault_report_table(result.fault_report, args))
    if args.obs_out is not None and result.journal is not None:
        _emit_journal(result.journal, args.obs_out)

    if args.json is not None:
        summary = {
            "seed": args.seed,
            "population": args.population,
            "top": len(sites),
            "shards": args.shards,
            "workers": args.workers,
            "executor": executor,
            "wall_seconds": result.wall_seconds,
            "stats": {
                "sites_considered": stats.sites_considered,
                "sites_filtered": stats.sites_filtered,
                "attempts": stats.attempts,
                "exposed_attempts": stats.exposed_attempts,
                "skipped_no_identity": stats.skipped_no_identity,
            },
            "telemetry": {
                "transport_requests": telemetry.transport_requests,
                "mail_stored": telemetry.mail_stored,
                "verification_pages_fetched": telemetry.verification_pages_fetched,
                "identities_provisioned": telemetry.identities_provisioned,
                "identities_burned": telemetry.identities_burned,
                "pages_loaded": telemetry.pages_loaded,
                "sim_seconds_elapsed": telemetry.sim_seconds_elapsed,
            },
        }
        if fault_plan is not None:
            summary["faults"] = {
                "profile": args.fault_profile,
                "fault_seed": args.fault_seed,
                "report": result.fault_report.as_dict(),
            }
        args.json.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import json
    import signal

    from repro.service import (
        CampaignDaemon,
        CheckpointError,
        ServiceConfig,
        load_checkpoint,
    )
    from repro.util.tables import render_table
    from repro.util.timeutil import DAY

    executor = args.executor
    if args.workers == 1 and executor != "serial":
        executor = "serial"

    if args.world_store is not None:
        _open_or_build_store(args.world_store, args.seed, args.population)

    config = ServiceConfig(
        seed=args.seed,
        population_size=args.population,
        top=args.top,
        shards=args.shards,
        epochs=args.epochs,
        epoch_length=args.epoch_days * DAY,
        fault_plan=_fault_plan_from(args),
        workers=args.workers,
        executor=executor,
        warm_workers=args.warm_workers,
        checkpoint_every=args.checkpoint_every,
        world_store=str(args.world_store) if args.world_store else None,
        traffic_users=args.traffic_users,
        traffic_logins_per_day=args.traffic_logins_per_day,
        stuffing_interval=args.stuffing_interval_days * DAY,
        stuffing_exact_rate=args.stuffing_exact_rate,
        stuffing_derive_rate=args.stuffing_derive_rate,
        stuffing_site_density=args.stuffing_site_density,
        stuffing_crack_rate=args.stuffing_crack_rate,
        stuffing_targets=args.stuffing_targets,
        login_batching=args.login_batch,
    )
    if config.stuffing_interval > 0 and config.traffic_users <= 0:
        print("--stuffing-interval-days requires --traffic-users",
              file=sys.stderr)
        return 1

    checkpoint_path = args.checkpoint or args.resume
    resume = None
    if args.resume is not None:
        if not args.resume.is_file():
            print(f"no such checkpoint: {args.resume}", file=sys.stderr)
            return 1
        try:
            resume = load_checkpoint(args.resume, config)
        except CheckpointError as exc:
            print(f"cannot resume from {args.resume}: {exc}", file=sys.stderr)
            return 1
        print(
            f"resuming from {args.resume} "
            f"({resume.epochs_completed}/{config.epochs} epochs checkpointed)",
            file=sys.stderr,
        )

    daemon = CampaignDaemon(
        config, checkpoint_path=checkpoint_path, flight_path=args.flight
    )

    def _graceful(signum, _frame):
        print(
            f"received signal {signum}; stopping after the in-flight epoch",
            file=sys.stderr,
        )
        daemon.request_stop()

    previous = {
        sig: signal.signal(sig, _graceful)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(
        f"serve: top={config.top} epochs={config.epochs} "
        f"shards={config.shards} workers={config.workers} executor={executor}"
        + (f" checkpoint={checkpoint_path}" if checkpoint_path else "")
        + (f" faults={args.fault_profile}/{args.fault_seed}"
           if config.fault_plan else ""),
        file=sys.stderr,
    )
    try:
        result = daemon.run(resume=resume)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    epoch_rows = [
        [str(r.epoch), str(r.sites), str(r.attempts), str(r.exposed),
         str(r.service_events),
         ("replayed" if r.replayed else "crawled")
         + ("+ckpt" if r.checkpointed else "")]
        for r in result.reports
    ]
    print(render_table(
        ["Epoch", "Sites", "Attempts", "Exposed", "Svc events", "Mode"],
        epoch_rows,
        title=f"Service epochs ({result.epochs_completed}/{config.epochs}"
              + (", interrupted" if result.interrupted else "") + ")",
    ))
    lifecycle = result.lifecycle
    rows = [
        ["Registration attempts", str(result.stats.attempts)],
        ["Identities exposed (burned)", str(result.stats.exposed_attempts)],
        ["Control-account probes", str(lifecycle.probes)],
        ["Accounts bound (service)", str(lifecycle.binds)],
        ["Provider freezes / recoveries",
         f"{lifecycle.freezes} / {lifecycle.recoveries}"],
        ["Password rotations", str(lifecycle.resets)],
        ["Attacker accesses (successful)",
         f"{lifecycle.attacks} ({lifecycle.attack_successes})"],
        ["Telemetry dumps ingested", str(lifecycle.dumps)],
        ["Sites detected", str(result.detected_sites)],
        ["Detection digest", result.detection_digest[:16]],
    ]
    if config.traffic_users > 0:
        rows[8:8] = [
            ["Benign logins (successful)",
             f"{lifecycle.traffic_logins} ({lifecycle.traffic_successes})"],
            ["Benign mails delivered", str(lifecycle.traffic_mails)],
        ]
    if config.stuffing_interval > 0:
        rows[8:8] = [
            ["Stuffing waves (candidates)",
             f"{lifecycle.stuffing_waves} ({lifecycle.stuffing_candidates})"],
            ["Stuffed logins (successful)",
             f"{lifecycle.stuffing_logins} ({lifecycle.stuffing_successes})"],
            ["Cross-site hits", str(lifecycle.stuffing_site_hits)],
        ]
    print(render_table(["Metric", "Value"], rows, title="Service totals"))
    if result.stuffing_waves and result.stuffing_model is not None:
        from repro.analysis.stuffing import (
            build_stuffing_classes,
            build_stuffing_correlation,
            render_stuffing_classes,
            render_stuffing_correlation,
        )

        print()
        print(render_stuffing_classes(
            build_stuffing_classes(result.stuffing_waves)
        ))
        print()
        print(render_stuffing_correlation(build_stuffing_correlation(
            result.stuffing_waves,
            result.stuffing_model,
            config.traffic_users,
        )))
    if config.fault_plan is not None:
        print()
        print(_fault_report_table(result.fault_report, args))
    if args.flight is not None:
        print(f"wrote flight file {args.flight} "
              f"(wall side channel {args.flight}.wall)", file=sys.stderr)
    if args.obs_out is not None and result.journal is not None:
        _emit_journal(result.journal, args.obs_out,
                      live_stats=result.live_stats)

    if args.json is not None:
        summary = {
            "seed": config.seed,
            "population": config.population_size,
            "top": config.top,
            "shards": config.shards,
            "workers": config.workers,
            "executor": executor,
            "epochs": config.epochs,
            "epochs_completed": result.epochs_completed,
            "interrupted": result.interrupted,
            "detected_sites": result.detected_sites,
            "detection_digest": result.detection_digest,
            "stats": {
                "attempts": result.stats.attempts,
                "exposed_attempts": result.stats.exposed_attempts,
            },
            "lifecycle": {
                "probes": lifecycle.probes,
                "probe_logins": lifecycle.probe_logins,
                "binds": lifecycle.binds,
                "freezes": lifecycle.freezes,
                "recoveries": lifecycle.recoveries,
                "resets": lifecycle.resets,
                "attacks": lifecycle.attacks,
                "attack_successes": lifecycle.attack_successes,
                "dumps": lifecycle.dumps,
                "traffic_windows": lifecycle.traffic_windows,
                "traffic_logins": lifecycle.traffic_logins,
                "traffic_successes": lifecycle.traffic_successes,
                "traffic_mails": lifecycle.traffic_mails,
                "stuffing_waves": lifecycle.stuffing_waves,
                "stuffing_candidates": lifecycle.stuffing_candidates,
                "stuffing_logins": lifecycle.stuffing_logins,
                "stuffing_successes": lifecycle.stuffing_successes,
                "stuffing_site_hits": lifecycle.stuffing_site_hits,
                "state_evictions": lifecycle.state_evictions,
            },
            "stuffing": [
                {
                    "wave": w.wave,
                    "site_rank": w.site_rank,
                    "site_host": w.site_host,
                    "method": w.method,
                    "acquisition": w.acquisition,
                    "candidates": w.candidates,
                    "attempts": w.attempts,
                    "successes": w.successes,
                    "site_targets": [
                        {"rank": t.target_rank, "candidates": t.candidates,
                         "hits": t.hits}
                        for t in w.site_targets
                    ],
                }
                for w in result.stuffing_waves
            ],
            # Per-stream firing tallies: answers "which stream is
            # starved" straight from the summary (satellite of PR 9).
            "streams": {
                label: {
                    "count": lifecycle.stream_counts.get(label, 0),
                    "last_fired": lifecycle.stream_last_fired.get(label),
                }
                for label in sorted(
                    set(lifecycle.stream_counts)
                    | set(lifecycle.stream_last_fired)
                )
            },
        }
        args.json.write_text(json.dumps(summary, indent=2) + "\n",
                             encoding="utf-8")
        print(f"wrote {args.json}", file=sys.stderr)
    return 3 if result.interrupted else 0


def _run_survey(args: argparse.Namespace) -> int:
    from repro.analysis.report import survey_ranks_for
    from repro.analysis.table4 import build_table4, render_table4
    from repro.core.system import TripwireSystem

    system = TripwireSystem(seed=args.seed, population_size=args.population)
    ranks = survey_ranks_for(args.population)
    print(render_table4(build_table4(system.population, ranks)))
    return 0


def _examples_dir() -> pathlib.Path | None:
    candidate = pathlib.Path(__file__).resolve().parents[2] / "examples"
    return candidate if candidate.is_dir() else None


def _run_demo(_args: argparse.Namespace) -> int:
    examples = _examples_dir()
    if examples is None:
        print("examples/ directory not found; run from a source checkout",
              file=sys.stderr)
        return 1
    script = examples / "quickstart.py"
    exec(compile(script.read_text(), str(script), "exec"), {"__name__": "__main__"})
    return 0


def _run_evasion(args: argparse.Namespace) -> int:
    import importlib

    from repro.util.tables import render_table

    examples = _examples_dir()
    if examples is None:
        print("examples/ directory not found; run from a source checkout",
              file=sys.stderr)
        return 1
    sys.path.insert(0, str(examples))
    try:
        evasion = importlib.import_module("evasion_analysis")
    finally:
        sys.path.pop(0)
    rows = []
    for fraction in (1.0, 0.5, 0.25, 0.1):
        detected = sum(
            evasion.detection_outcome(fraction, avoid_provider=False, seed=5000 + t)[0]
            for t in range(args.trials)
        )
        rows.append([f"{fraction:.0%}", f"{detected}/{args.trials}",
                     f"{detected / args.trials:.0%}"])
    print(render_table(["Haul fraction tested", "Detected", "Rate"], rows,
                       title="Evasion sweep (§7.3)"))
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    from repro.perf.suite import run_from_args

    return run_from_args(args)


def _run_obs(args: argparse.Namespace) -> int:
    if args.obs_action == "top":
        from repro.obs.top import run_top

        return run_top(
            args.flight,
            follow=not args.once,
            interval=args.interval,
            max_seconds=args.max_seconds,
        )
    if args.obs_action == "tail":
        from repro.obs.top import run_tail

        return run_tail(
            args.flight,
            follow=args.follow,
            lines=args.lines,
            max_seconds=args.max_seconds,
        )

    from repro.obs.journal import read_journal
    from repro.obs.report import render_ops_report

    if not args.journal.is_file():
        print(f"no such journal: {args.journal}", file=sys.stderr)
        return 1
    # Saved journals never carry cache stats — those are process-local
    # and only the live run that produced the journal can report them.
    print(render_ops_report(read_journal(args.journal)))
    return 0


_HANDLERS = {
    "pilot": _run_pilot,
    "campaign": _run_campaign,
    "serve": _run_serve,
    "survey": _run_survey,
    "demo": _run_demo,
    "evasion": _run_evasion,
    "perf": _run_perf,
    "obs": _run_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
