"""Command-line interface.

    python -m repro pilot --scale 0.1 --seed 2017
    python -m repro survey --population 1500
    python -m repro demo
    python -m repro evasion --trials 20
    python -m repro perf --quick
    python -m repro campaign --obs-out journal.jsonl
    python -m repro obs report journal.jsonl

``pilot`` runs the full study and prints every table and figure;
``survey`` runs the Table 4 eligibility measurement; ``demo`` is the
quickstart detection walk-through; ``evasion`` sweeps the §7.3
attacker-sampling strategies; ``perf`` runs the A/B performance suite
and writes the repo-root BENCH snapshot.

``--obs-out PATH`` on ``pilot``/``campaign`` turns the observability
layer on for the run, writes the deterministic JSONL journal to PATH
and prints the ops report (with live cache stats); ``obs report``
re-renders the report later from a journal file alone.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tripwire (IMC 2017) reproduction: infer internet site "
                    "compromise from password-reuse attacks on honey accounts.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    pilot = commands.add_parser("pilot", help="run the year-long pilot study")
    pilot.add_argument("--scale", type=float, default=0.1,
                       help="fraction of the paper's sizes (default 0.1)")
    pilot.add_argument("--seed", type=int, default=2017)
    pilot.add_argument("--breaches", type=int, default=21,
                       help="breaches to schedule (paper detected 19)")
    _add_fault_arguments(pilot)
    _add_obs_arguments(pilot)

    survey = commands.add_parser("survey", help="eligibility survey (Table 4)")
    survey.add_argument("--population", type=int, default=1500)
    survey.add_argument("--seed", type=int, default=41)

    campaign = commands.add_parser(
        "campaign",
        help="sharded registration campaign over the ranked top list",
    )
    campaign.add_argument("--top", type=int, default=500,
                          help="ranked sites to crawl (default 500)")
    campaign.add_argument("--population", type=int, default=3000)
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--shards", type=int, default=8,
                          help="independent world shards (default 8)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="parallel shard workers (default 1)")
    campaign.add_argument("--warm-workers", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="per-worker warm world cache (site specs, identity "
                               "corpora); --no-warm-workers forces the cold "
                               "reference path (output is identical either way)")
    campaign.add_argument("--executor", choices=["serial", "thread", "process"],
                          default="process",
                          help="shard executor backend (default process)")
    campaign.add_argument("--json", type=pathlib.Path, default=None,
                          help="write a machine-readable summary here")
    _add_fault_arguments(campaign)
    _add_obs_arguments(campaign)

    obs = commands.add_parser(
        "obs",
        help="render the ops report from a saved run journal",
    )
    obs_actions = obs.add_subparsers(dest="obs_action", required=True)
    obs_report = obs_actions.add_parser(
        "report", help="pretty-print a journal written by --obs-out",
    )
    obs_report.add_argument("journal", type=pathlib.Path,
                            help="path to a journal JSONL file")

    commands.add_parser("demo", help="quickstart: one breach, one detection")

    evasion = commands.add_parser("evasion", help="attacker evasion sweep (§7.3)")
    evasion.add_argument("--trials", type=int, default=20)

    from repro.perf.suite import add_suite_arguments

    perf = commands.add_parser(
        "perf",
        help="A/B performance suite (caches off vs on, bit-identical)",
    )
    add_suite_arguments(perf)
    return parser


def _add_fault_arguments(command: argparse.ArgumentParser) -> None:
    from repro.faults.plan import PROFILES

    command.add_argument(
        "--fault-profile", choices=sorted(PROFILES), default="off",
        help="deterministic fault-injection profile (default off)",
    )
    command.add_argument(
        "--fault-seed", type=int, default=0,
        help="namespace for the fault RNG streams (default 0); the same "
             "world seed with a different fault seed replays the run "
             "under a different failure sequence",
    )


def _add_obs_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--obs-out", type=pathlib.Path, default=None, metavar="PATH",
        help="enable the observability layer, write the deterministic "
             "run journal (JSONL) here and print the ops report",
    )


def _fault_plan_from(args: argparse.Namespace):
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.from_profile(args.fault_profile, seed=args.fault_seed)
    return plan if plan.enabled else None


def _emit_journal(journal, path: pathlib.Path) -> None:
    """Write the journal and print the live ops report below it."""
    from repro.obs.report import render_ops_report
    from repro.perf.caching import cache_stats

    journal.write(path)
    print(f"wrote journal {path}", file=sys.stderr)
    print()
    print(render_ops_report(journal.payload(), cache_stats=cache_stats()))


def _run_pilot(args: argparse.Namespace) -> int:
    from repro.analysis.report import full_report
    from repro.core.scenario import PilotScenario, ScenarioConfig

    def scaled(value: int, minimum: int) -> int:
        return max(minimum, int(value * args.scale))

    config = ScenarioConfig(
        seed=args.seed,
        population_size=scaled(30000, 400),
        seed_list_size=scaled(1000, 50),
        main_crawl_top=scaled(25000, 300),
        second_crawl_top=scaled(30000, 400),
        manual_top=scaled(500, 20),
        breach_count=args.breaches,
        breach_hard_exposing=max(3, args.breaches // 2 + 1),
        unused_account_count=scaled(2000, 200),
        fault_plan=_fault_plan_from(args),
        obs_enabled=args.obs_out is not None,
    )
    print(f"pilot: population={config.population_size} seed={config.seed}"
          + (f" faults={args.fault_profile}/{args.fault_seed}"
             if config.fault_plan else ""),
          file=sys.stderr)
    started = time.time()
    result = PilotScenario(config).run()
    print(f"finished in {time.time() - started:.1f}s", file=sys.stderr)
    print(full_report(result))
    if config.fault_plan is not None:
        print()
        print(_fault_report_table(result.system.fault_report, args))
    if args.obs_out is not None:
        from repro.obs.journal import RunJournal

        meta = {
            "command": "pilot",
            "seed": config.seed,
            "population": config.population_size,
            "breaches": config.breach_count,
            "fault_profile": args.fault_profile,
            "fault_seed": args.fault_seed,
        }
        _emit_journal(RunJournal.from_observation(result.system.obs, meta),
                      args.obs_out)
    return 0


def _fault_report_table(report, args: argparse.Namespace) -> str:
    from repro.util.tables import render_table

    rows = [[name.replace("_", " ").capitalize(), str(value)]
            for name, value in report.as_dict().items()]
    return render_table(
        ["Fault counter", "Count"], rows,
        title=f"Injected faults (profile={args.fault_profile}, "
              f"fault-seed={args.fault_seed})",
    )


def _run_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.core.runner import CampaignRunner
    from repro.core.substrate import WorldShard
    from repro.util.rngtree import RngTree
    from repro.util.tables import render_table

    executor = args.executor
    if args.workers == 1 and executor != "serial":
        executor = "serial"

    # The ranked list comes from the substrate alone (no apparatus);
    # every shard regenerates identical specs from the same root seed.
    listing = WorldShard(RngTree(args.seed)).build_population(args.population)
    sites = listing.alexa_top(args.top)

    fault_plan = _fault_plan_from(args)
    runner = CampaignRunner(
        seed=args.seed,
        population_size=args.population,
        shards=args.shards,
        workers=args.workers,
        executor=executor,
        fault_plan=fault_plan,
        obs_enabled=args.obs_out is not None,
        obs_meta={"command": "campaign"},
        warm_workers=args.warm_workers,
    )
    print(
        f"campaign: top={len(sites)} shards={args.shards} "
        f"workers={args.workers} executor={executor}"
        + (f" faults={args.fault_profile}/{args.fault_seed}" if fault_plan else ""),
        file=sys.stderr,
    )
    result = runner.run(sites)

    stats, telemetry = result.stats, result.telemetry
    rows = [
        ["Sites considered", str(stats.sites_considered)],
        ["Sites filtered (shared backend)", str(stats.sites_filtered)],
        ["Registration attempts", str(stats.attempts)],
        ["Identities exposed (burned)", str(stats.exposed_attempts)],
        ["Transport requests", str(telemetry.transport_requests)],
        ["Mail messages stored", str(telemetry.mail_stored)],
        ["Verification pages fetched", str(telemetry.verification_pages_fetched)],
        ["Wall-clock seconds", f"{result.wall_seconds:.2f}"],
    ]
    print(render_table(["Metric", "Value"], rows,
                       title=f"Sharded campaign ({executor}, "
                             f"{args.shards} shards, {args.workers} workers)"))
    if fault_plan is not None:
        print()
        print(_fault_report_table(result.fault_report, args))
    if args.obs_out is not None and result.journal is not None:
        _emit_journal(result.journal, args.obs_out)

    if args.json is not None:
        summary = {
            "seed": args.seed,
            "population": args.population,
            "top": len(sites),
            "shards": args.shards,
            "workers": args.workers,
            "executor": executor,
            "wall_seconds": result.wall_seconds,
            "stats": {
                "sites_considered": stats.sites_considered,
                "sites_filtered": stats.sites_filtered,
                "attempts": stats.attempts,
                "exposed_attempts": stats.exposed_attempts,
                "skipped_no_identity": stats.skipped_no_identity,
            },
            "telemetry": {
                "transport_requests": telemetry.transport_requests,
                "mail_stored": telemetry.mail_stored,
                "verification_pages_fetched": telemetry.verification_pages_fetched,
                "identities_provisioned": telemetry.identities_provisioned,
                "identities_burned": telemetry.identities_burned,
                "pages_loaded": telemetry.pages_loaded,
                "sim_seconds_elapsed": telemetry.sim_seconds_elapsed,
            },
        }
        if fault_plan is not None:
            summary["faults"] = {
                "profile": args.fault_profile,
                "fault_seed": args.fault_seed,
                "report": result.fault_report.as_dict(),
            }
        args.json.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _run_survey(args: argparse.Namespace) -> int:
    from repro.analysis.report import survey_ranks_for
    from repro.analysis.table4 import build_table4, render_table4
    from repro.core.system import TripwireSystem

    system = TripwireSystem(seed=args.seed, population_size=args.population)
    ranks = survey_ranks_for(args.population)
    print(render_table4(build_table4(system.population, ranks)))
    return 0


def _examples_dir() -> pathlib.Path | None:
    candidate = pathlib.Path(__file__).resolve().parents[2] / "examples"
    return candidate if candidate.is_dir() else None


def _run_demo(_args: argparse.Namespace) -> int:
    examples = _examples_dir()
    if examples is None:
        print("examples/ directory not found; run from a source checkout",
              file=sys.stderr)
        return 1
    script = examples / "quickstart.py"
    exec(compile(script.read_text(), str(script), "exec"), {"__name__": "__main__"})
    return 0


def _run_evasion(args: argparse.Namespace) -> int:
    import importlib

    from repro.util.tables import render_table

    examples = _examples_dir()
    if examples is None:
        print("examples/ directory not found; run from a source checkout",
              file=sys.stderr)
        return 1
    sys.path.insert(0, str(examples))
    try:
        evasion = importlib.import_module("evasion_analysis")
    finally:
        sys.path.pop(0)
    rows = []
    for fraction in (1.0, 0.5, 0.25, 0.1):
        detected = sum(
            evasion.detection_outcome(fraction, avoid_provider=False, seed=5000 + t)[0]
            for t in range(args.trials)
        )
        rows.append([f"{fraction:.0%}", f"{detected}/{args.trials}",
                     f"{detected / args.trials:.0%}"])
    print(render_table(["Haul fraction tested", "Detected", "Rate"], rows,
                       title="Evasion sweep (§7.3)"))
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    from repro.perf.suite import run_from_args

    return run_from_args(args)


def _run_obs(args: argparse.Namespace) -> int:
    from repro.obs.journal import read_journal
    from repro.obs.report import render_ops_report

    if not args.journal.is_file():
        print(f"no such journal: {args.journal}", file=sys.stderr)
        return 1
    # Saved journals never carry cache stats — those are process-local
    # and only the live run that produced the journal can report them.
    print(render_ops_report(read_journal(args.journal)))
    return 0


_HANDLERS = {
    "pilot": _run_pilot,
    "campaign": _run_campaign,
    "survey": _run_survey,
    "demo": _run_demo,
    "evasion": _run_evasion,
    "perf": _run_perf,
    "obs": _run_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
