"""Generative model of the website population.

Site characteristics are drawn from distributions calibrated to the
paper's own measurements:

- Table 4 eligibility rates by Alexa rank (load failure, non-English,
  no registration, payment-required), interpolated in log-rank;
- Section 7.2 incidence of bot checks (37% of top-100 registration
  forms, ~19% on average) and multi-stage forms (~10%);
- Section 6.1.2 password-management practices (roughly half of breached
  sites exposed hard passwords, i.e. stored them recoverably).

Specific ranks can be pinned with explicit overrides so a scenario can
guarantee, e.g., a Deals site near rank 500 that stores plaintext.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.data.sites import SHARED_BACKENDS, SITE_CATEGORIES, SITE_NAME_STEMS, SITE_NAME_SUFFIXES, TLDS
from repro.util.rngtree import RngTree, weighted_choice
from repro.web.i18n import NON_ENGLISH_WEIGHTS
from repro.web.spec import (
    BotCheck,
    EmailBehavior,
    LinkPlacement,
    RegistrationStyle,
    ResponseStyle,
    SiteSpec,
)
from repro.web.pages import (
    ENGLISH_ANCHOR_VARIANTS,
    NEUTRAL_REGISTRATION_PATHS,
    UNUSUAL_ANCHOR_VARIANTS,
)

#: Table 4 anchors: log10(rank) -> (load_failure, non_english,
#: no_registration, ineligible) probabilities.  The residual is "rest".
_ELIGIBILITY_ANCHORS: tuple[tuple[float, tuple[float, float, float, float]], ...] = (
    (2.0, (0.03, 0.43, 0.07, 0.04)),
    (3.0, (0.09, 0.37, 0.15, 0.06)),
    (4.0, (0.08, 0.53, 0.16, 0.05)),
    (5.0, (0.08, 0.43, 0.29, 0.03)),
)

_REGISTRATION_PATHS = (
    "/signup", "/register", "/join", "/account/register", "/user/signup",
    "/accounts/new", "/registration",
)


def eligibility_probs(rank: int) -> tuple[float, float, float, float]:
    """Interpolated (load_failure, non_english, no_registration,
    ineligible) probabilities for a rank."""
    import math

    log_rank = math.log10(max(rank, 1))
    anchors = _ELIGIBILITY_ANCHORS
    if log_rank <= anchors[0][0]:
        return anchors[0][1]
    if log_rank >= anchors[-1][0]:
        return anchors[-1][1]
    for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
        if x0 <= log_rank <= x1:
            t = (log_rank - x0) / (x1 - x0)
            return tuple(a + t * (b - a) for a, b in zip(y0, y1))  # type: ignore[return-value]
    raise AssertionError("unreachable")  # pragma: no cover


def bot_check_prob(rank: int) -> float:
    """Probability a registration form carries a bot check (§7.2)."""
    import math

    log_rank = math.log10(max(rank, 1))
    # 37% at top-100 declining to ~15% by rank 10k, flat after.
    if log_rank <= 2.0:
        return 0.37
    if log_rank >= 4.0:
        return 0.15
    return 0.37 + (log_rank - 2.0) / 2.0 * (0.15 - 0.37)


@dataclass
class GeneratorConfig:
    """Tunable incidence rates for generated sites."""

    multistage_rate: float = 0.10
    ambiguous_response_rate: float = 0.36
    noisy_response_rate: float = 0.20
    shadow_ban_site_rate: float = 0.25  # sites that fraud-score signups
    shadow_ban_rate: float = 0.30  # per-registration silent drop there
    username_rate: float = 0.60
    name_fields_rate: float = 0.35
    phone_field_rate: float = 0.12
    birthdate_rate: float = 0.15
    gender_rate: float = 0.10
    confirm_password_rate: float = 0.45
    terms_checkbox_rate: float = 0.35
    extra_unlabeled_rate: float = 0.30
    extra_field_required_rate: float = 0.72  # given an extra field exists
    unusual_anchor_rate: float = 0.30  # English sites with unmatchable links
    special_char_rate: float = 0.025
    email_length_limit_rate: float = 0.02
    username_length_limit_rate: float = 0.05
    shared_backend_rate: float = 0.03
    free_trial_rate: float = 0.30  # within Deals/Marketing categories
    no_mx_rate: float = 0.04  # sites with no MX record (site J, §6.3.2)
    shard_multi_rate: float = 0.10
    email_behavior_weights: tuple[tuple[EmailBehavior, float], ...] = (
        (EmailBehavior.VERIFICATION_LINK, 0.40),
        (EmailBehavior.VERIFICATION_OPTIONAL, 0.12),
        (EmailBehavior.WELCOME_ONLY, 0.04),
        (EmailBehavior.NOTHING, 0.44),
    )
    link_placement_weights: tuple[tuple[LinkPlacement, float], ...] = (
        (LinkPlacement.PROMINENT, 0.60),
        (LinkPlacement.FOOTER, 0.12),
        (LinkPlacement.IMAGE_ONLY, 0.16),
        (LinkPlacement.UNLINKED, 0.12),
    )
    bot_check_kind_weights: tuple[tuple[BotCheck, float], ...] = (
        (BotCheck.CAPTCHA_IMAGE, 0.60),
        (BotCheck.KNOWLEDGE_QUESTION, 0.20),
        (BotCheck.INTERACTIVE, 0.20),
    )
    label_style_weights: tuple[tuple[str, float], ...] = (
        ("for", 0.55), ("wrap", 0.15), ("placeholder", 0.20), ("adjacent", 0.10),
    )


class SpecCacheLike(Protocol):
    """A shared site-spec table (see :class:`repro.perf.warm.SpecCache`).

    Declared here as a Protocol so the web layer never imports the perf
    layer; any object with these two attributes qualifies.
    """

    specs: dict[int, SiteSpec]
    hosts_taken: set[str]


def _storage_weights(rank: int) -> tuple[tuple[str, float], ...]:
    """Password-storage mix; small sites store passwords worse."""
    import math

    tail = min(1.0, max(0.0, (math.log10(max(rank, 1)) - 2.0) / 3.0))
    return (
        ("plaintext", 0.08 + 0.10 * tail),
        ("reversible", 0.03 + 0.04 * tail),
        ("unsalted_md5", 0.12 + 0.12 * tail),
        ("salted_hash", 0.37 - 0.08 * tail),
        ("strong_hash", 0.40 - 0.18 * tail),
    )


class SiteGenerator:
    """Draws :class:`SiteSpec` objects deterministically by rank.

    ``spec_cache`` (see :mod:`repro.perf.warm`) shares the generated
    spec table across generators built from the same seed and config:
    each rank's spec is a pure function of ``(seed, config, overrides,
    rank)`` — the per-rank RNG stream is derived from the tree alone —
    so a warm worker re-running a world regenerates nothing.  Specs are
    never mutated after generation (the generator itself writes
    ``notes`` before publishing), which is what makes sharing instances
    across worlds in one process safe.
    """

    def __init__(
        self,
        rng_tree: RngTree,
        config: GeneratorConfig | None = None,
        overrides: dict[int, dict[str, object]] | None = None,
        spec_cache: "SpecCacheLike | None" = None,
    ):
        self._tree = rng_tree.child("site-generator")
        self.config = config or GeneratorConfig()
        self._overrides = dict(overrides or {})
        self._spec_cache = spec_cache
        #: With a shared cache, collision avoidance consults the shared
        #: host set so cached and freshly generated specs never clash.
        self._hosts_taken: set[str] = (
            spec_cache.hosts_taken if spec_cache is not None else set()
        )

    def _host_for(self, rank: int, rng: random.Random, backend: str | None) -> str:
        tld = weighted_choice(rng, TLDS)
        for attempt in range(20):
            if backend is not None:
                name = f"{backend}{rng.randrange(2, 99)}"
            elif rng.random() < 0.5:
                name = rng.choice(SITE_NAME_STEMS) + rng.choice(SITE_NAME_SUFFIXES)
            else:
                name = rng.choice(SITE_NAME_STEMS) + rng.choice(SITE_NAME_STEMS)
            if attempt > 5:
                name = f"{name}{rng.randrange(100)}"
            host = f"{name}{tld}"
            if host not in self._hosts_taken:
                self._hosts_taken.add(host)
                return host
        host = f"site-{rank}{tld}"
        self._hosts_taken.add(host)
        return host

    def spec_for_rank(self, rank: int) -> SiteSpec:
        """The spec for one rank (from the shared cache when warm).

        A shared cache is filled **prefix-closed**: every missing rank
        below the requested one is generated first, in rank order, so
        the host-collision set a rank sees is always exactly the hosts
        of ranks ``1..rank-1``.  That makes each cached spec a pure
        function of ``(seed, config, rank)`` — independent of which
        shard, epoch or worker asks first — which is what lets the
        service daemon resume from a checkpoint into a cache with
        different history and still reproduce identical worlds.
        """
        cache = self._spec_cache
        if cache is None:
            return self._generate(rank)
        spec = cache.specs.get(rank)
        if spec is not None:
            return spec
        # All inserts go through this loop, so cache keys are always
        # the contiguous range 1..len(specs).
        for missing in range(len(cache.specs) + 1, rank + 1):
            cache.specs[missing] = self._generate(missing)
        return cache.specs[rank]

    def iter_specs(self, up_to: int):
        """Stream specs for ranks ``1..up_to`` in order, O(1) retained.

        The streaming twin of the prefix-closed cache fill: generating
        strictly in rank order gives every rank the same host-collision
        history a cache fill would, so the yielded specs are identical
        to ``spec_for_rank`` over the same range — this is what the
        world store's segment builder consumes, without holding the
        spec table in memory.
        """
        if up_to < 1:
            raise ValueError("up_to must be positive")
        for rank in range(1, up_to + 1):
            yield self._generate(rank)

    def _generate(self, rank: int) -> SiteSpec:
        """Generate (deterministically) the spec for one rank."""
        rng = self._tree.child("rank", rank).rng()
        cfg = self.config

        overrides = self._overrides.get(rank, {})
        backend = None
        if not overrides and rng.random() < cfg.shared_backend_rate:
            backend = rng.choice(SHARED_BACKENDS)
        host = str(overrides.get("host") or self._host_for(rank, rng, backend))
        category = str(overrides.get("category") or rng.choice(SITE_CATEGORIES))

        load_p, non_en_p, no_reg_p, inelig_p = eligibility_probs(rank)
        bucket_roll = rng.random()
        if bucket_roll < load_p:
            bucket = "load_failure"
        elif bucket_roll < load_p + non_en_p:
            bucket = "non_english"
        elif bucket_roll < load_p + non_en_p + no_reg_p:
            bucket = "no_registration"
        elif bucket_roll < load_p + non_en_p + no_reg_p + inelig_p:
            bucket = "ineligible"
        else:
            bucket = "rest"
        if "bucket" in overrides:
            bucket = str(overrides["bucket"])

        language = "en"
        if bucket == "non_english":
            language = weighted_choice(rng, NON_ENGLISH_WEIGHTS)

        if bucket == "no_registration":
            style = weighted_choice(rng, (
                (RegistrationStyle.NONE, 0.70),
                (RegistrationStyle.EXTERNAL_ONLY, 0.20),
                (RegistrationStyle.OFFLINE_ONLY, 0.10),
            ))
        elif bucket == "ineligible":
            style = RegistrationStyle.PAYMENT_REQUIRED
        elif rng.random() < cfg.multistage_rate:
            style = RegistrationStyle.MULTISTAGE
        else:
            style = RegistrationStyle.SIMPLE
        multistage_credentials_first = (
            style is RegistrationStyle.MULTISTAGE and rng.random() < 0.6
        )
        multistage_creates_at_step1 = (
            multistage_credentials_first and rng.random() < 0.75
        )

        bot_check = BotCheck.NONE
        if style in (RegistrationStyle.SIMPLE, RegistrationStyle.MULTISTAGE,
                     RegistrationStyle.PAYMENT_REQUIRED):
            if rng.random() < bot_check_prob(rank):
                bot_check = weighted_choice(rng, cfg.bot_check_kind_weights)

        link_placement = weighted_choice(rng, cfg.link_placement_weights)
        registration_path = rng.choice(_REGISTRATION_PATHS)
        if link_placement in (LinkPlacement.IMAGE_ONLY, LinkPlacement.UNLINKED):
            # Sites burying the link behind an image or JS menu rarely
            # advertise it in the URL either (§6.2.2).
            registration_path = rng.choice(NEUTRAL_REGISTRATION_PATHS)
        if language == "en":
            if rng.random() < cfg.unusual_anchor_rate:
                anchor_text = rng.choice(UNUSUAL_ANCHOR_VARIANTS)
                registration_path = rng.choice(NEUTRAL_REGISTRATION_PATHS)
            else:
                anchor_text = rng.choice(ENGLISH_ANCHOR_VARIANTS)
        else:
            from repro.web.i18n import lexicon_for

            anchor_text = lexicon_for(language).sign_up

        is_free_trial = category in ("Deals", "Marketing") and rng.random() < cfg.free_trial_rate

        spec = SiteSpec(
            host=host,
            rank=rank,
            category=category,
            language=language,
            load_fails=bucket == "load_failure",
            supports_https=rng.random() < self._https_prob(rank),
            shared_backend=backend,
            registration_style=style,
            link_placement=link_placement,
            registration_path=registration_path,
            anchor_text=anchor_text,
            label_style=weighted_choice(rng, cfg.label_style_weights),
            bot_check=bot_check,
            response_style=weighted_choice(rng, (
                (ResponseStyle.AMBIGUOUS, cfg.ambiguous_response_rate),
                (ResponseStyle.NOISY, cfg.noisy_response_rate),
                (ResponseStyle.CLEAR,
                 max(0.0, 1.0 - cfg.ambiguous_response_rate - cfg.noisy_response_rate)),
            )),
            email_behavior=weighted_choice(rng, cfg.email_behavior_weights),
            multistage_credentials_first=multistage_credentials_first,
            multistage_creates_at_step1=multistage_creates_at_step1,
            wants_username=rng.random() < cfg.username_rate,
            wants_name=rng.random() < cfg.name_fields_rate,
            # Free-trial sites exist to feed sales teams, so they always
            # collect a phone number (the §5.2.2 call source).
            wants_phone=is_free_trial or rng.random() < cfg.phone_field_rate,
            wants_birthdate=rng.random() < cfg.birthdate_rate,
            wants_gender=rng.random() < cfg.gender_rate,
            wants_confirm_password=rng.random() < cfg.confirm_password_rate,
            wants_terms_checkbox=rng.random() < cfg.terms_checkbox_rate,
            extra_unlabeled_field=(extra_unlabeled := rng.random() < cfg.extra_unlabeled_rate),
            extra_field_required=extra_unlabeled and rng.random() < cfg.extra_field_required_rate,
            requires_special_char=rng.random() < cfg.special_char_rate,
            shadow_ban_rate=(cfg.shadow_ban_rate
                             if rng.random() < cfg.shadow_ban_site_rate else 0.0),
            max_email_length=(rng.randrange(22, 31)
                              if rng.random() < cfg.email_length_limit_rate else None),
            max_username_length=(rng.randrange(10, 21)
                                 if rng.random() < cfg.username_length_limit_rate else None),
            password_storage=weighted_choice(rng, _storage_weights(rank)),
            requires_admin_approval=rng.random() < 0.02,
            lists_usernames_publicly=rng.random() < 0.10,
            shard_count=(rng.choice((2, 4, 8))
                         if rng.random() < cfg.shard_multi_rate else 1),
            site_brute_force_protection=rng.random() < 0.70,
            is_free_trial=is_free_trial,
        )
        spec.notes["has_mx"] = "no" if rng.random() < cfg.no_mx_rate else "yes"

        for name, value in overrides.items():
            if name in ("bucket",):
                continue
            if not hasattr(spec, name):
                raise ValueError(f"unknown override field {name!r}")
            setattr(spec, name, value)
        return spec

    @staticmethod
    def _https_prob(rank: int) -> float:
        import math

        log_rank = math.log10(max(rank, 1))
        return max(0.35, 0.85 - 0.12 * log_rank)
