"""Simulated website population.

Each simulated site renders real HTML (homepage, registration form,
response pages, verification landing) through the transport layer, runs
an account database with a configurable password-storage policy, and
optionally sends verification/welcome email through the simulated mail
system.  The generator draws site characteristics from distributions
calibrated to the paper's own measurements (Table 4 eligibility rates,
Section 7.2 bot-check and multi-stage incidence), so the crawler's
funnel emerges from mechanism rather than being hard-coded.
"""

from repro.web.passwords import PasswordStorage, StoredCredential
from repro.web.accounts import SiteAccount, SiteAccountDatabase
from repro.web.spec import (
    LinkPlacement,
    RegistrationStyle,
    ResponseStyle,
    SiteSpec,
)
from repro.web.site import Website
from repro.web.generator import SiteGenerator
from repro.web.population import InternetPopulation, RankedSite

__all__ = [
    "PasswordStorage",
    "StoredCredential",
    "SiteAccount",
    "SiteAccountDatabase",
    "SiteSpec",
    "RegistrationStyle",
    "ResponseStyle",
    "LinkPlacement",
    "Website",
    "SiteGenerator",
    "InternetPopulation",
    "RankedSite",
]
