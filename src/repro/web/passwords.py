"""Site-side password storage policies.

What an attacker recovers from a breached account database depends on
how the site stored passwords (Section 6.1.2):

- plaintext or a reversible scheme exposes **every** password;
- any one-way hash (salted or not, weak or strong) still falls to a
  dictionary attack for dictionary-derived ("easy") passwords, while
  random ("hard") passwords survive;
- salting/strong hashing additionally *delays* cracking, which we model
  as extra days before cracked credentials become usable.

The stored form is a :class:`StoredCredential`; the site itself can
always *verify* a password against it, but only some forms can be
inverted by an attacker.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass


class PasswordStorage(enum.Enum):
    """How a site persists account passwords."""

    PLAINTEXT = "plaintext"
    REVERSIBLE = "reversible"  # "encrypted" with a recoverable scheme
    UNSALTED_MD5 = "unsalted_md5"  # fast unsalted hash (site C, site L)
    SALTED_HASH = "salted_hash"
    STRONG_HASH = "strong_hash"  # bcrypt-class, per-user salt + high cost

    @property
    def exposes_all_passwords(self) -> bool:
        """Whether a database dump yields every password directly."""
        return self in (PasswordStorage.PLAINTEXT, PasswordStorage.REVERSIBLE)

    @property
    def crack_delay_days(self) -> int:
        """Typical extra days a dictionary attack needs against a dump."""
        return {
            PasswordStorage.PLAINTEXT: 0,
            PasswordStorage.REVERSIBLE: 0,
            PasswordStorage.UNSALTED_MD5: 1,
            PasswordStorage.SALTED_HASH: 7,
            PasswordStorage.STRONG_HASH: 21,
        }[self]


def _digest(scheme: str, salt: str, password: str) -> str:
    return hashlib.sha256(f"{scheme}|{salt}|{password}".encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoredCredential:
    """A password at rest under some storage policy.

    ``secret`` is the literal password for reversible schemes and a
    digest otherwise; ``salt`` is empty for unsalted schemes.
    """

    storage: PasswordStorage
    secret: str
    salt: str = ""

    @classmethod
    def store(cls, storage: PasswordStorage, password: str, salt_source: str = "") -> "StoredCredential":
        """Persist a password under ``storage``.

        ``salt_source`` seeds the per-user salt for salted schemes (the
        account database passes the username).
        """
        if storage.exposes_all_passwords:
            return cls(storage=storage, secret=password)
        if storage is PasswordStorage.UNSALTED_MD5:
            return cls(storage=storage, secret=_digest("md5", "", password))
        salt = hashlib.sha256(f"salt|{salt_source}".encode("utf-8")).hexdigest()[:16]
        scheme = "bcrypt" if storage is PasswordStorage.STRONG_HASH else "sha-salted"
        return cls(storage=storage, secret=_digest(scheme, salt, password), salt=salt)

    def verify(self, password: str) -> bool:
        """Site-side check: does ``password`` match this credential?"""
        if self.storage.exposes_all_passwords:
            return self.secret == password
        if self.storage is PasswordStorage.UNSALTED_MD5:
            return self.secret == _digest("md5", "", password)
        scheme = "bcrypt" if self.storage is PasswordStorage.STRONG_HASH else "sha-salted"
        return self.secret == _digest(scheme, self.salt, password)

    def recover_directly(self) -> str | None:
        """The password itself when the scheme is reversible, else None."""
        if self.storage.exposes_all_passwords:
            return self.secret
        return None

    def matches_guess(self, guess: str) -> bool:
        """Offline attacker guess check (identical math to verify)."""
        return self.verify(guess)
