"""Site specification: every generated characteristic of one website.

A :class:`SiteSpec` is pure data; :class:`repro.web.site.Website` gives
it behavior.  The generator draws specs from rank-calibrated
distributions (see :mod:`repro.web.generator`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RegistrationStyle(enum.Enum):
    """Shape of the site's registration flow."""

    SIMPLE = "simple"  # one form, one POST
    MULTISTAGE = "multistage"  # split across two pages (§7.2)
    EXTERNAL_ONLY = "external_only"  # OAuth buttons only, no local form
    PAYMENT_REQUIRED = "payment_required"  # needs a credit card (§6.2.3)
    OFFLINE_ONLY = "offline_only"  # accounts created out of band (§6.2.3)
    NONE = "none"  # no accounts at all


class LinkPlacement(enum.Enum):
    """How discoverable the registration link is from the homepage."""

    PROMINENT = "prominent"  # nav link with a standard anchor text
    FOOTER = "footer"  # standard text, buried in the footer
    IMAGE_ONLY = "image_only"  # an image link with no anchor text (§6.2.2)
    UNLINKED = "unlinked"  # reachable only by knowing the URL (§6.2.2)


class ResponseStyle(enum.Enum):
    """How the site answers a registration submission."""

    CLEAR = "clear"  # explicit success/error copy
    AMBIGUOUS = "ambiguous"  # generic page either way
    NOISY = "noisy"  # success page contains error-looking boilerplate


class BotCheck(enum.Enum):
    """Turing-test gate on the registration form (§7.2)."""

    NONE = "none"
    CAPTCHA_IMAGE = "captcha_image"  # solvable via the third-party service
    KNOWLEDGE_QUESTION = "knowledge_question"  # free-form question
    INTERACTIVE = "interactive"  # reCAPTCHA/KeyCAPTCHA-class; unsolvable


class EmailBehavior(enum.Enum):
    """What the site emails after a successful registration."""

    VERIFICATION_LINK = "verification_link"  # must click to activate
    VERIFICATION_OPTIONAL = "verification_optional"  # link sent, account active anyway
    WELCOME_ONLY = "welcome_only"
    NOTHING = "nothing"


@dataclass
class SiteSpec:
    """Complete description of one simulated website."""

    host: str
    rank: int
    category: str
    language: str  # lexicon code; "en" or a non-English code
    # -- availability --------------------------------------------------------
    load_fails: bool = False
    supports_https: bool = False
    shared_backend: str | None = None  # non-None → filtered pre-crawl (§5.1)
    # Sites E and F in the paper were owned by one company and shared a
    # registration backend: one breach exposed both, and their stolen
    # accounts showed periodic, temporally aligned logins (§6.4.1).
    backend_family: str | None = None
    # -- registration flow ----------------------------------------------------
    registration_style: RegistrationStyle = RegistrationStyle.SIMPLE
    link_placement: LinkPlacement = LinkPlacement.PROMINENT
    registration_path: str = "/signup"
    anchor_text: str = "Sign up"  # label on the registration link
    label_style: str = "for"  # for | wrap | placeholder | adjacent
    bot_check: BotCheck = BotCheck.NONE
    response_style: ResponseStyle = ResponseStyle.CLEAR
    email_behavior: EmailBehavior = EmailBehavior.WELCOME_ONLY
    # -- multistage details ------------------------------------------------------
    multistage_credentials_first: bool = False  # step 1 asks for email+password
    multistage_creates_at_step1: bool = False  # account exists after step 1
    # -- form composition -------------------------------------------------------
    wants_username: bool = True  # separate username field vs email-as-login
    wants_name: bool = False
    wants_phone: bool = False
    wants_birthdate: bool = False  # month/day/year dropdowns
    wants_gender: bool = False  # a gender dropdown
    wants_confirm_password: bool = False
    wants_terms_checkbox: bool = False
    extra_unlabeled_field: bool = False  # a field with an opaque name/label
    extra_field_required: bool = False  # ...marked required in the HTML too
    # -- server-side validation quirks -------------------------------------------
    requires_special_char: bool = False  # rejects both Tripwire classes (§7.2)
    shadow_ban_rate: float = 0.0  # fraud-scored signups silently dropped
    max_email_length: int | None = None  # site that rejected an 18-char local (§6.2.3)
    max_username_length: int | None = None
    # -- account handling -----------------------------------------------------
    password_storage: "PasswordStorageName" = "salted_hash"
    requires_admin_approval: bool = False  # account unusable until staff approve
    # Sites E/F list usernames on public pages (§6.3.5); combined with
    # missing login rate limits this enables online brute-forcing.
    lists_usernames_publicly: bool = False
    shard_count: int = 1
    site_brute_force_protection: bool = True
    is_free_trial: bool = False  # sales teams may phone the number (§5.2.2)
    # -- derived conveniences -----------------------------------------------------
    notes: dict[str, str] = field(default_factory=dict)

    @property
    def is_english(self) -> bool:
        """Whether the site renders in English."""
        return self.language == "en"

    @property
    def has_local_registration(self) -> bool:
        """Whether any purely-online local registration exists."""
        return self.registration_style in (
            RegistrationStyle.SIMPLE,
            RegistrationStyle.MULTISTAGE,
        )

    @property
    def advertises_registration(self) -> bool:
        """Whether the homepage links to some signup flow at all."""
        return self.registration_style not in (
            RegistrationStyle.NONE,
            RegistrationStyle.OFFLINE_ONLY,
        )

    @property
    def eligible_for_tripwire(self) -> bool:
        """Ground-truth eligibility per the Table 4 taxonomy.

        Loads, is in English, and offers a purely-online registration
        that needs no payment or out-of-band step.
        """
        return (
            not self.load_fails
            and self.is_english
            and self.has_local_registration
            and not self.requires_unavailable_info
        )

    @property
    def requires_unavailable_info(self) -> bool:
        """Whether registration needs data Tripwire cannot supply."""
        return self.registration_style is RegistrationStyle.PAYMENT_REQUIRED

    @property
    def eligibility_bucket(self) -> str:
        """Table 4 bucket: load_failure / non_english / no_registration /
        ineligible / rest."""
        if self.load_fails:
            return "load_failure"
        if not self.is_english:
            return "non_english"
        if self.registration_style in (RegistrationStyle.NONE, RegistrationStyle.OFFLINE_ONLY,
                                       RegistrationStyle.EXTERNAL_ONLY):
            return "no_registration"
        if self.requires_unavailable_info:
            return "ineligible"
        return "rest"


#: The storage field is a plain string to keep SiteSpec import-light;
#: :meth:`storage_policy` upgrades it to the enum.
PasswordStorageName = str


def storage_policy(spec: SiteSpec):
    """The spec's :class:`repro.web.passwords.PasswordStorage`."""
    from repro.web.passwords import PasswordStorage

    return PasswordStorage(spec.password_storage)
