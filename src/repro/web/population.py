"""The ranked internet population and its wiring to the substrate.

Builds sites lazily: specs are generated per rank on demand, and a
:class:`repro.web.site.Website` is only instantiated (plus DNS, WHOIS
and transport registration) when something actually visits the host.

Two ranking providers are emulated: the canonical ranking plays the
role of Alexa; the Quantcast list is the same population re-ranked with
noise plus a disjoint tail, so that merging the two top-1,000 lists and
de-duplicating — the paper's December 2014 seed (Section 5.1) — is a
meaningful operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.dns import DnsResolver
from repro.net.ipaddr import IPv4Address
from repro.net.transport import Transport
from repro.net.whois import HostKind, WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.generator import GeneratorConfig, SiteGenerator
from repro.web.site import MailRouter, Website
from repro.web.spec import SiteSpec


@dataclass(frozen=True)
class RankedSite:
    """One entry in a ranking list."""

    rank: int
    host: str
    url: str


class InternetPopulation:
    """Lazily instantiated population of ranked websites."""

    def __init__(
        self,
        rng_tree: RngTree,
        clock: SimClock,
        transport: Transport,
        whois: WhoisRegistry,
        dns: DnsResolver,
        size: int = 30000,
        mail_router: MailRouter | None = None,
        config: GeneratorConfig | None = None,
        overrides: dict[int, dict[str, object]] | None = None,
        spec_cache: object | None = None,
    ):
        if size < 1:
            raise ValueError("population size must be positive")
        self.size = size
        self._tree = rng_tree.child("population")
        self._clock = clock
        self._transport = transport
        self._whois = whois
        self._dns = dns
        self._mail_router = mail_router
        self._generator = SiteGenerator(
            rng_tree, config=config, overrides=overrides, spec_cache=spec_cache
        )
        self._specs: dict[int, SiteSpec] = {}
        self._sites: dict[str, Website] = {}
        self._host_to_rank: dict[str, int] = {}
        self._hosting_blocks: list = []
        self._hosting_rng = self._tree.child("hosting").rng()

    # -- spec and site access -----------------------------------------------------

    def spec_at_rank(self, rank: int) -> SiteSpec:
        """The (cached) spec for a rank in [1, size]."""
        if not 1 <= rank <= self.size:
            raise ValueError(f"rank {rank} outside population [1, {self.size}]")
        spec = self._specs.get(rank)
        if spec is None:
            spec = self._generator.spec_for_rank(rank)
            self._specs[rank] = spec
            self._host_to_rank[spec.host] = rank
        return spec

    def site_at_rank(self, rank: int) -> Website:
        """The instantiated website for a rank (wired into the substrate)."""
        spec = self.spec_at_rank(rank)
        site = self._sites.get(spec.host)
        if site is None:
            site = self._instantiate(spec)
        return site

    def site_by_host(self, host: str) -> Website | None:
        """An already-instantiated site by hostname."""
        return self._sites.get(host.lower())

    def rank_of_host(self, host: str) -> int | None:
        """Rank of a host seen so far."""
        return self._host_to_rank.get(host.lower())

    def _next_hosting_ip(self) -> IPv4Address:
        """Allocate a server IP from (shared) datacenter blocks."""
        if not self._hosting_blocks or self._hosting_blocks[-1][1] >= 250:
            org = f"SimHost Cloud {len(self._hosting_blocks) + 1}"
            record = self._whois.allocate_block(24, org, "US", HostKind.DATACENTER)
            self._hosting_blocks.append([record, 0])
        record, used = self._hosting_blocks[-1]
        self._hosting_blocks[-1][1] = used + 1
        return record.block.address_at(used + 1)

    def _instantiate(self, spec: SiteSpec) -> Website:
        rng = self._tree.child("site", spec.host).rng()
        site = Website(spec, self._clock, rng, mail_router=self._mail_router)
        address = self._next_hosting_ip()
        self._dns.register_host(spec.host, address)
        if spec.notes.get("has_mx") != "no":
            self._dns.zone(spec.host).add_mx(f"mail.{spec.host}")
        self._transport.register_host(spec.host, site, https=spec.supports_https)
        if spec.load_fails:
            self._transport.set_host_down(spec.host)
        self._sites[spec.host] = site
        return site

    def instantiated_sites(self) -> list[Website]:
        """All sites built so far."""
        return list(self._sites.values())

    # -- ranking lists ---------------------------------------------------------------

    def alexa_top(self, n: int) -> list[RankedSite]:
        """The canonical ranking's top ``n`` entries."""
        n = min(n, self.size)
        entries = []
        for rank in range(1, n + 1):
            spec = self.spec_at_rank(rank)
            entries.append(RankedSite(rank=rank, host=spec.host, url=f"http://{spec.host}/"))
        return entries

    def entries_for_ranks(self, ranks: list[int]) -> list[RankedSite]:
        """Ranked entries for an arbitrary rank subset (shard slices).

        Specs are generated per rank from the substrate tree, so any
        shard asking for the same ranks sees the same hosts.
        """
        entries = []
        for rank in ranks:
            spec = self.spec_at_rank(rank)
            entries.append(RankedSite(rank=rank, host=spec.host, url=f"http://{spec.host}/"))
        return entries

    def quantcast_top(self, n: int) -> list[RankedSite]:
        """A second provider's noisy re-ranking of the same population.

        Roughly 70% of its top ``n`` overlaps the canonical top ``n``;
        the rest is pulled from deeper ranks.
        """
        n = min(n, self.size)
        rng = self._tree.child("quantcast").rng()
        chosen: list[int] = []
        seen: set[int] = set()
        for position in range(1, n + 1):
            if rng.random() < 0.7 or self.size <= n:
                base = position
            else:
                base = rng.randrange(1, self.size + 1)
            candidate = base
            while candidate in seen:
                candidate = rng.randrange(1, self.size + 1)
            seen.add(candidate)
            chosen.append(candidate)
        entries = []
        for position, rank in enumerate(chosen, start=1):
            spec = self.spec_at_rank(rank)
            entries.append(RankedSite(rank=position, host=spec.host, url=f"http://{spec.host}/"))
        return entries

    # -- ground truth for analysis ------------------------------------------------------

    def eligibility_ground_truth(self, ranks: list[int]) -> dict[str, int]:
        """Bucket counts for a set of ranks (Table 4's manual survey)."""
        counts = {"load_failure": 0, "non_english": 0, "no_registration": 0,
                  "ineligible": 0, "rest": 0}
        for rank in ranks:
            counts[self.spec_at_rank(rank).eligibility_bucket] += 1
        return counts
