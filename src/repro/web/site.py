"""The website behavior: routing, validation, accounts, email.

A :class:`Website` is the transport handler for one host.  It renders
the pages from :mod:`repro.web.pages`, runs server-side validation with
the quirks its spec prescribes, maintains the account database, and
sends verification/welcome email through the simulated mail system.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable

from repro.mail.messages import EmailMessage, MessageKind
from repro.net.transport import HttpRequest, HttpResponse
from repro.sim.clock import SimClock
from repro.util.timeutil import SimInstant
from repro.web import pages
from repro.web.accounts import DuplicateAccountError, SiteAccount, SiteAccountDatabase
from repro.web.i18n import Lexicon, lexicon_for
from repro.web.spec import (
    BotCheck,
    EmailBehavior,
    RegistrationStyle,
    SiteSpec,
    storage_policy,
)

from repro.web.captcha import captcha_answer_for

MailRouter = Callable[[EmailMessage], object]


@dataclass(frozen=True)
class RegistrationRecord:
    """Ground truth about one server-side registration attempt."""

    time: SimInstant
    email: str
    username: str
    accepted: bool
    error: str | None


class Website:
    """Transport handler plus server state for one site."""

    SITE_LOGIN_FAILURE_LIMIT = 20

    def __init__(
        self,
        spec: SiteSpec,
        clock: SimClock,
        rng: random.Random,
        mail_router: MailRouter | None = None,
    ):
        self.spec = spec
        self.lex: Lexicon = lexicon_for(spec.language)
        self._clock = clock
        self._rng = rng
        self._mail_router = mail_router
        self.accounts = SiteAccountDatabase(storage_policy(spec), spec.shard_count)
        self._captcha_counter = 0
        self._stage_counter = 0
        self._stages: dict[str, dict[str, str]] = {}
        self.registration_log: list[RegistrationRecord] = []
        # Plaintexts as the registration handler observed them.  This is
        # what an attacker with code execution on the site (key logging,
        # a tapped handler) sees regardless of storage policy; only
        # online-capture breaches may read it.
        self._observed_plaintexts: dict[str, str] = {}
        self.sales_call_numbers: list[str] = []
        self._login_failures: dict[str, int] = {}
        self._locked_logins: set[str] = set()

    # -- routing ----------------------------------------------------------------

    def __call__(self, request: HttpRequest) -> HttpResponse:
        """Serve one request."""
        path = request.path.rstrip("/") or "/"
        reg = self.spec.registration_path.rstrip("/")
        if path == "/":
            return self._ok(pages.render_homepage(self.spec, self.lex))
        if path in ("/about", "/contact", "/privacy"):
            return self._ok(pages.render_homepage(self.spec, self.lex))
        if path == reg:
            return self._serve_registration_page()
        if path == f"{reg}/step2" and request.method == "POST":
            return self._serve_stage2(request)
        if path == f"{reg}/submit" and request.method == "POST":
            return self._handle_submission(request)
        if path == "/verify":
            return self._handle_verification(request)
        if path == "/login" and request.method == "POST":
            return self._handle_login(request)
        if path == "/login":
            return self._ok(pages.render_homepage(self.spec, self.lex))
        if path == "/sitemap.xml":
            return self._serve_sitemap()
        if path == "/users" and self.spec.lists_usernames_publicly:
            return self._serve_member_list()
        return HttpResponse(404, pages.render_load_failure())

    def _serve_member_list(self) -> HttpResponse:
        """A public member directory (sites E/F listed usernames, §6.3.5)."""
        from repro.html.builder import el, page_skeleton, render_document

        root, body = page_skeleton(f"Members — {self.spec.host}", lang=self.lex.lang)
        listing = el("ul", {"class": "members"})
        for account in self.accounts.all_accounts():
            listing.append(el("li", {"class": "member"}, account.username))
        body.append(el("h2", None, "Members"))
        body.append(listing)
        return self._ok(render_document(root))

    def _serve_sitemap(self) -> HttpResponse:
        """The sitemap a search-engine spider reads.

        Registration pages appear here even when the homepage hides
        them — which is why a search engine can find pages the paper's
        crawler could not (§6.2.2).
        """
        scheme = "https" if self.spec.supports_https else "http"
        paths = ["/", "/about", "/contact", "/login"]
        if self.spec.advertises_registration:
            paths.append(self.spec.registration_path)
        urls = "\n".join(
            f"  <url><loc>{scheme}://{self.spec.host}{p}</loc></url>" for p in paths
        )
        body = f'<?xml version="1.0" encoding="UTF-8"?>\n<urlset>\n{urls}\n</urlset>\n'
        return HttpResponse(200, body, headers={"Content-Type": "application/xml"})

    def _ok(self, body: str) -> HttpResponse:
        return HttpResponse(200, body)

    # -- registration pages --------------------------------------------------------

    def _new_captcha_token(self) -> str:
        self._captcha_counter += 1
        return f"ch-{self.spec.host}-{self._captcha_counter}"

    def _serve_registration_page(self) -> HttpResponse:
        if not self.spec.advertises_registration:
            return HttpResponse(404, pages.render_load_failure())
        token = None
        if self.spec.bot_check is not BotCheck.NONE:
            token = self._new_captcha_token()
        body = pages.render_registration_page(self.spec, self.lex, step=1, captcha_token=token)
        return self._ok(body)

    def _serve_stage2(self, request: HttpRequest) -> HttpResponse:
        """Accept stage-1 data, hand back the stage-2 form."""
        self._stage_counter += 1
        stage_token = f"st-{self._stage_counter}"
        self._stages[stage_token] = dict(request.form)
        if self.spec.multistage_creates_at_step1 and self.spec.multistage_credentials_first:
            self._create_from_stage1(dict(request.form))
        token = None
        if self.spec.bot_check is not BotCheck.NONE:
            token = self._new_captcha_token()
        body = pages.render_registration_page(
            self.spec, self.lex, step=2, captcha_token=token, stage_token=stage_token
        )
        return self._ok(body)

    def _create_from_stage1(self, form: dict[str, str]) -> None:
        """Some multistage sites persist the account after step 1.

        The paper's crawler never completed step 2, yet ~7% of its
        "bad heuristics" attempts turned out valid — this is the
        mechanism that produces those.
        """
        names = self.lex.field_names
        email = form.get(names["email"], "").strip()
        password = form.get(names["password"], "")
        username = form.get(names["username"], "").strip() or (email.split("@")[0] if email else "")
        if not email or "@" not in email or len(password) < 8:
            return
        now = self._clock.now()
        try:
            account = self._create_account(form, email, username, password, now)
        except DuplicateAccountError:
            return
        self._send_post_registration_email(account, now)
        self.registration_log.append(
            RegistrationRecord(time=now, email=email, username=username,
                               accepted=True, error=None)
        )

    # -- submission handling -----------------------------------------------------------

    def _merged_form(self, request: HttpRequest) -> dict[str, str]:
        form = dict(request.form)
        stage_token = form.pop("stage_token", None)
        if stage_token and stage_token in self._stages:
            merged = dict(self._stages.pop(stage_token))
            merged.update(form)
            return merged
        return form

    def _validation_error(self, form: dict[str, str]) -> str | None:
        """First server-side validation failure, or None when clean."""
        names = self.lex.field_names
        email = form.get(names["email"], "").strip()
        password = form.get(names["password"], "")

        if self.spec.bot_check in (BotCheck.CAPTCHA_IMAGE, BotCheck.KNOWLEDGE_QUESTION):
            answer = form.get(names["captcha"], "")
            token = form.get("_challenge_token", "")
            if not token or captcha_answer_for(token) != answer:
                return "bot_check_failed"
        if self.spec.bot_check is BotCheck.INTERACTIVE:
            if not form.get(f"{names['captcha']}_response"):
                return "bot_check_failed"

        if not email or "@" not in email:
            return "missing_email"
        if not password:
            return "missing_password"
        if self.spec.wants_username and not form.get(names["username"], "").strip():
            return "missing_username"
        if self.spec.wants_confirm_password:
            if form.get(names["password_confirm"], "") != password:
                return "password_mismatch"
        if self.spec.wants_terms_checkbox and not form.get(names["terms"]):
            return "terms_not_accepted"
        if self.spec.extra_unlabeled_field and not form.get("x_fld_71"):
            return "missing_field"
        if self.spec.registration_style is RegistrationStyle.PAYMENT_REQUIRED:
            if not form.get("card_number"):
                return "payment_required"
        if len(password) < 8:
            return "password_too_short"
        if self.spec.requires_special_char and password.isalnum():
            return "password_needs_special_char"
        if self.spec.max_email_length is not None and len(email) > self.spec.max_email_length:
            return "email_too_long"
        username = form.get(names["username"], "").strip() or email.split("@")[0]
        if self.spec.max_username_length is not None and len(username) > self.spec.max_username_length:
            return "username_too_long"
        return None

    def _handle_submission(self, request: HttpRequest) -> HttpResponse:
        form = self._merged_form(request)
        now = self._clock.now()
        names = self.lex.field_names
        email = form.get(names["email"], "").strip()
        password = form.get(names["password"], "")
        username = form.get(names["username"], "").strip() or (email.split("@")[0] if email else "")

        error = self._validation_error(form)
        shadow_banned = False
        if error is None and self._rng.random() < self.spec.shadow_ban_rate:
            # Fraud scoring silently discards the signup while showing
            # the normal success page — indistinguishable to a crawler.
            shadow_banned = True
            error = "shadow_ban"
        if error is None:
            try:
                account = self._create_account(form, email, username, password, now)
            except DuplicateAccountError:
                error = "duplicate_account"
            else:
                self._send_post_registration_email(account, now)
                self._maybe_sales_call(form)
        self.registration_log.append(
            RegistrationRecord(time=now, email=email, username=username,
                               accepted=error is None, error=error)
        )
        looks_ok = error is None or shadow_banned
        body = pages.render_response_page(
            self.spec, self.lex, ok=looks_ok,
            error=None if looks_ok else self.lex.error_missing,
        )
        return self._ok(body)

    def _create_account(
        self,
        form: dict[str, str],
        email: str,
        username: str,
        password: str,
        now: SimInstant,
    ) -> SiteAccount:
        names = self.lex.field_names
        profile = {
            key: form.get(names.get(key, key), "")
            for key in ("first_name", "last_name", "phone")
            if form.get(names.get(key, key))
        }
        self._observed_plaintexts[username.lower()] = password
        needs_verification = self.spec.email_behavior is EmailBehavior.VERIFICATION_LINK
        token = None
        if self.spec.email_behavior in (EmailBehavior.VERIFICATION_LINK,
                                        EmailBehavior.VERIFICATION_OPTIONAL):
            token = hashlib.sha256(
                f"verify|{self.spec.host}|{username}|{now}".encode("utf-8")
            ).hexdigest()[:20]
        return self.accounts.register(
            username=username,
            email=email,
            password=password,
            created_at=now,
            profile=profile,
            activated=not needs_verification,
            verification_token=token,
        )

    def _send_post_registration_email(self, account: SiteAccount, now: SimInstant) -> None:
        if self._mail_router is None:
            return
        behavior = self.spec.email_behavior
        if behavior is EmailBehavior.NOTHING:
            return
        scheme = "https" if self.spec.supports_https else "http"
        sender = f"noreply@{self.spec.host}"
        if behavior in (EmailBehavior.VERIFICATION_LINK, EmailBehavior.VERIFICATION_OPTIONAL):
            link = f"{scheme}://{self.spec.host}/verify?token={account.verification_token}"
            message = EmailMessage(
                sender=sender,
                recipient=account.email,
                subject=f"Please verify your email address for {self.spec.host}",
                body=(
                    f"Hi {account.username},\n\n"
                    f"Thanks for registering at {self.spec.host}. Please confirm your "
                    f"account by clicking the link below:\n\n{link}\n"
                ),
                time=now,
                kind=MessageKind.VERIFICATION,
            )
        else:
            message = EmailMessage(
                sender=sender,
                recipient=account.email,
                subject=f"Welcome to {self.spec.host}!",
                body=(
                    f"Hi {account.username},\n\nYour new account at {self.spec.host} is "
                    f"ready. Visit {scheme}://{self.spec.host}/ to get started.\n"
                ),
                time=now,
                kind=MessageKind.WELCOME,
            )
        self._mail_router(message)

    def _maybe_sales_call(self, form: dict[str, str]) -> None:
        if not self.spec.is_free_trial:
            return
        phone = form.get(self.lex.field_names.get("phone", "phone"), "")
        if phone and self._rng.random() < 0.5:
            self.sales_call_numbers.append(phone)

    # -- verification ----------------------------------------------------------------

    def _handle_verification(self, request: HttpRequest) -> HttpResponse:
        token = request.query.get("token", "")
        account = self.accounts.activate_by_token(token) if token else None
        body = pages.render_verification_landing(self.spec, self.lex, ok=account is not None)
        return self._ok(body)

    # -- site login (used by success estimation and attackers) ------------------------

    def _handle_login(self, request: HttpRequest) -> HttpResponse:
        user = request.form.get("login", "") or request.form.get(
            self.lex.field_names["email"], ""
        )
        password = request.form.get(self.lex.field_names["password"], "")
        key = user.lower()
        if self.spec.site_brute_force_protection and key in self._locked_logins:
            return HttpResponse(429, pages.render_response_page(self.spec, self.lex, ok=False))
        if self.spec.requires_admin_approval:
            return HttpResponse(401, pages.render_response_page(self.spec, self.lex, ok=False))
        if self.accounts.check_login(user, password):
            self._login_failures.pop(key, None)
            return self._ok(pages.render_response_page(self.spec, self.lex, ok=True))
        failures = self._login_failures.get(key, 0) + 1
        self._login_failures[key] = failures
        if self.spec.site_brute_force_protection and failures >= self.SITE_LOGIN_FAILURE_LIMIT:
            self._locked_logins.add(key)
        return HttpResponse(401, pages.render_response_page(self.spec, self.lex, ok=False))

    # -- direct (non-HTTP) conveniences -----------------------------------------------

    def seed_organic_accounts(self, count: int) -> int:
        """Populate the database with non-Tripwire user accounts.

        Breached hauls should contain more than honey rows; organic
        accounts use third-party email domains, so the credential
        checker never tests them at the monitored provider.  Returns
        how many were actually created (collisions are skipped).
        """
        created = 0
        now = self._clock.now()
        for index in range(count):
            username = f"user{self._rng.randrange(10**7):07d}"
            domain = self._rng.choice(("webpost.example", "quickmail.example",
                                       "inboxly.example", "mailnest.example"))
            email = f"{username}@{domain}"
            if self._rng.random() < 0.45:
                password = f"{self._rng.choice(('Sunshine', 'Monkey12', 'Football'))}{index % 10}"
            else:
                password = f"pw{self._rng.randrange(10**10):010d}"
            try:
                account = self.accounts.register(
                    username=username, email=email, password=password,
                    created_at=now, activated=True,
                )
            except DuplicateAccountError:
                continue
            self._observed_plaintexts[account.username.lower()] = password
            created += 1
        return created

    def observed_plaintext(self, username: str) -> str | None:
        """What an on-site interception point saw for this username."""
        return self._observed_plaintexts.get(username.lower())

    def check_credentials(self, username_or_email: str, password: str) -> bool:
        """Offline credential check used by manual-login estimation."""
        if self.spec.requires_admin_approval:
            return False
        return self.accounts.check_login(username_or_email, password)
