"""Localization tables for simulated sites.

Non-English sites made up 44.3% of the paper's eligibility sample and
were entirely unsupported by the English-only crawler heuristics
(Sections 6.2.1, 7.1).  Simulated sites render their chrome, anchor
texts, field labels *and field name attributes* in their language, so
the crawler's failure on them is mechanical, not scripted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Lexicon:
    """Strings a site needs to render registration chrome."""

    lang: str
    sign_up: str
    log_in: str
    email: str
    password: str
    confirm_password: str
    username: str
    first_name: str
    last_name: str
    phone: str
    submit: str
    welcome: str
    success: str
    error_missing: str
    captcha_prompt: str
    terms: str
    filler: tuple[str, ...]  # body copy the language detector sees
    field_names: dict[str, str]  # semantic key -> form "name" attribute


ENGLISH = Lexicon(
    lang="en",
    sign_up="Sign up",
    log_in="Log in",
    email="Email address",
    password="Password",
    confirm_password="Confirm password",
    username="Username",
    first_name="First name",
    last_name="Last name",
    phone="Phone number",
    submit="Create account",
    welcome="Welcome",
    success="Your registration was successful. Welcome aboard!",
    error_missing="There was a problem with your submission. Please correct the errors below.",
    captcha_prompt="Enter the characters shown in the image",
    terms="I agree to the terms of service",
    filler=(
        "the", "and", "with", "your", "for", "this", "that", "from",
        "news", "community", "latest", "popular", "about", "contact",
    ),
    field_names={
        "email": "email",
        "password": "password",
        "password_confirm": "password2",
        "username": "username",
        "first_name": "first_name",
        "last_name": "last_name",
        "phone": "phone",
        "captcha": "captcha",
        "terms": "tos",
    },
)

GERMAN = Lexicon(
    lang="de",
    sign_up="Registrieren",
    log_in="Anmelden",
    email="E-Mail-Adresse",
    password="Passwort",
    confirm_password="Passwort bestätigen",
    username="Benutzername",
    first_name="Vorname",
    last_name="Nachname",
    phone="Telefonnummer",
    submit="Konto erstellen",
    welcome="Willkommen",
    success="Ihre Registrierung war erfolgreich. Willkommen an Bord!",
    error_missing="Es gab ein Problem mit Ihrer Übermittlung.",
    captcha_prompt="Geben Sie die angezeigten Zeichen ein",
    terms="Ich stimme den Nutzungsbedingungen zu",
    filler=("und", "der", "die", "das", "mit", "für", "nachrichten", "gemeinschaft", "über", "kontakt"),
    field_names={
        "email": "emailadresse",
        "password": "passwort",
        "password_confirm": "passwort2",
        "username": "benutzername",
        "first_name": "vorname",
        "last_name": "nachname",
        "phone": "telefon",
        "captcha": "sicherheitscode",
        "terms": "agb",
    },
)

FRENCH = Lexicon(
    lang="fr",
    sign_up="S'inscrire",
    log_in="Connexion",
    email="Adresse e-mail",
    password="Mot de passe",
    confirm_password="Confirmez le mot de passe",
    username="Nom d'utilisateur",
    first_name="Prénom",
    last_name="Nom",
    phone="Téléphone",
    submit="Créer un compte",
    welcome="Bienvenue",
    success="Votre inscription a réussi. Bienvenue à bord!",
    error_missing="Un problème est survenu avec votre soumission.",
    captcha_prompt="Entrez les caractères affichés",
    terms="J'accepte les conditions d'utilisation",
    filler=("les", "des", "avec", "votre", "pour", "actualités", "communauté", "dernières", "propos"),
    field_names={
        "email": "courriel",
        "password": "motdepasse",
        "password_confirm": "motdepasse2",
        "username": "pseudo",
        "first_name": "prenom",
        "last_name": "nom",
        "phone": "telephone",
        "captcha": "code",
        "terms": "conditions",
    },
)

SPANISH = Lexicon(
    lang="es",
    sign_up="Regístrate",
    log_in="Iniciar sesión",
    email="Correo electrónico",
    password="Contraseña",
    confirm_password="Confirmar contraseña",
    username="Nombre de usuario",
    first_name="Nombre",
    last_name="Apellido",
    phone="Teléfono",
    submit="Crear cuenta",
    welcome="Bienvenido",
    success="Su registro fue exitoso. ¡Bienvenido a bordo!",
    error_missing="Hubo un problema con su envío.",
    captcha_prompt="Ingrese los caracteres mostrados",
    terms="Acepto los términos de servicio",
    filler=("los", "las", "con", "para", "noticias", "comunidad", "últimas", "acerca", "contacto"),
    field_names={
        "email": "correo",
        "password": "contrasena",
        "password_confirm": "contrasena2",
        "username": "usuario",
        "first_name": "nombre",
        "last_name": "apellido",
        "phone": "telefono",
        "captcha": "codigo",
        "terms": "terminos",
    },
)

RUSSIAN = Lexicon(
    lang="ru",
    sign_up="Регистрация",
    log_in="Войти",
    email="Адрес электронной почты",
    password="Пароль",
    confirm_password="Подтвердите пароль",
    username="Имя пользователя",
    first_name="Имя",
    last_name="Фамилия",
    phone="Телефон",
    submit="Создать аккаунт",
    welcome="Добро пожаловать",
    success="Ваша регистрация прошла успешно.",
    error_missing="Возникла проблема с вашей заявкой.",
    captcha_prompt="Введите символы с картинки",
    terms="Я согласен с условиями использования",
    filler=("и", "в", "на", "с", "новости", "сообщество", "последние", "контакты"),
    field_names={
        "email": "pochta",
        "password": "parol",
        "password_confirm": "parol2",
        "username": "imya",
        "first_name": "imya_f",
        "last_name": "familiya",
        "phone": "telefon",
        "captcha": "kod",
        "terms": "usloviya",
    },
)

CHINESE = Lexicon(
    lang="zh",
    sign_up="注册",
    log_in="登录",
    email="电子邮件地址",
    password="密码",
    confirm_password="确认密码",
    username="用户名",
    first_name="名字",
    last_name="姓氏",
    phone="电话号码",
    submit="创建账户",
    welcome="欢迎",
    success="您的注册已成功。",
    error_missing="您的提交出现问题。",
    captcha_prompt="请输入图片中的字符",
    terms="我同意服务条款",
    filler=("的", "和", "新闻", "社区", "最新", "关于", "联系"),
    field_names={
        "email": "youxiang",
        "password": "mima",
        "password_confirm": "mima2",
        "username": "yonghuming",
        "first_name": "mingzi",
        "last_name": "xingshi",
        "phone": "dianhua",
        "captcha": "yanzhengma",
        "terms": "tiaokuan",
    },
)

PORTUGUESE = Lexicon(
    lang="pt",
    sign_up="Cadastre-se",
    log_in="Entrar",
    email="Endereço de e-mail",
    password="Senha",
    confirm_password="Confirme a senha",
    username="Nome de usuário",
    first_name="Nome",
    last_name="Sobrenome",
    phone="Telefone",
    submit="Criar conta",
    welcome="Bem-vindo",
    success="Seu cadastro foi realizado com sucesso.",
    error_missing="Houve um problema com seu envio.",
    captcha_prompt="Digite os caracteres mostrados",
    terms="Aceito os termos de serviço",
    filler=("os", "das", "com", "para", "notícias", "comunidade", "últimas", "sobre", "contato"),
    field_names={
        "email": "emailpt",
        "password": "senha",
        "password_confirm": "senha2",
        "username": "usuario",
        "first_name": "nome",
        "last_name": "sobrenome",
        "phone": "telefone",
        "captcha": "codigo",
        "terms": "termos",
    },
)

JAPANESE = Lexicon(
    lang="ja",
    sign_up="新規登録",
    log_in="ログイン",
    email="メールアドレス",
    password="パスワード",
    confirm_password="パスワードを確認",
    username="ユーザー名",
    first_name="名",
    last_name="姓",
    phone="電話番号",
    submit="アカウントを作成",
    welcome="ようこそ",
    success="登録が完了しました。",
    error_missing="送信に問題がありました。",
    captcha_prompt="表示された文字を入力してください",
    terms="利用規約に同意します",
    filler=("の", "と", "ニュース", "コミュニティ", "最新", "お問い合わせ"),
    field_names={
        "email": "meru",
        "password": "pasuwado",
        "password_confirm": "pasuwado2",
        "username": "yuzamei",
        "first_name": "mei",
        "last_name": "sei",
        "phone": "denwa",
        "captcha": "ninsho",
        "terms": "kiyaku",
    },
)

LEXICONS: dict[str, Lexicon] = {
    lex.lang: lex
    for lex in (ENGLISH, GERMAN, FRENCH, SPANISH, RUSSIAN, CHINESE, PORTUGUESE, JAPANESE)
}

#: Relative prevalence of non-English languages in the population,
#: echoing §6.2.1 (six of seven missed non-English breaches were
#: Chinese-language sites, one Russian).
NON_ENGLISH_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("zh", 30.0),
    ("ru", 16.0),
    ("es", 14.0),
    ("de", 12.0),
    ("ja", 10.0),
    ("pt", 9.0),
    ("fr", 9.0),
)


def lexicon_for(lang: str) -> Lexicon:
    """The lexicon for a language code (KeyError for unknown codes)."""
    return LEXICONS[lang]
