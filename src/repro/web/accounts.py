"""Site account databases, optionally sharded.

Section 4.4 discusses sharded databases: a breach may expose only a
subset of shards, in which case Tripwire detects the compromise only if
one of its accounts landed in an exposed shard.  Accounts are assigned
to shards by a stable hash of the username.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.util.timeutil import SimInstant
from repro.web.passwords import PasswordStorage, StoredCredential


@dataclass
class SiteAccount:
    """One account row at a site."""

    username: str
    email: str
    credential: StoredCredential
    created_at: SimInstant
    profile: dict[str, str] = field(default_factory=dict)
    activated: bool = True
    verification_token: str | None = None

    @property
    def shard_key(self) -> str:
        """Stable key used for shard assignment."""
        return self.username.lower()


class DuplicateAccountError(ValueError):
    """The username or email is already registered."""


class SiteAccountDatabase:
    """Account storage for one site."""

    def __init__(self, storage: PasswordStorage, shard_count: int = 1):
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        self.storage = storage
        self.shard_count = shard_count
        self._by_username: dict[str, SiteAccount] = {}
        self._by_email: dict[str, SiteAccount] = {}

    def __len__(self) -> int:
        return len(self._by_username)

    def register(
        self,
        username: str,
        email: str,
        password: str,
        created_at: SimInstant,
        profile: dict[str, str] | None = None,
        activated: bool = True,
        verification_token: str | None = None,
    ) -> SiteAccount:
        """Create an account; raises :class:`DuplicateAccountError` on reuse."""
        user_key, email_key = username.lower(), email.lower()
        if user_key in self._by_username:
            raise DuplicateAccountError(f"username taken: {username!r}")
        if email_key in self._by_email:
            raise DuplicateAccountError(f"email already registered: {email!r}")
        account = SiteAccount(
            username=username,
            email=email,
            credential=StoredCredential.store(self.storage, password, salt_source=user_key),
            created_at=created_at,
            profile=dict(profile or {}),
            activated=activated,
            verification_token=verification_token,
        )
        self._by_username[user_key] = account
        self._by_email[email_key] = account
        return account

    def lookup(self, username_or_email: str) -> SiteAccount | None:
        """Find an account by username or email address."""
        key = username_or_email.lower()
        return self._by_username.get(key) or self._by_email.get(key)

    def check_login(self, username_or_email: str, password: str) -> bool:
        """Whether a site login with these credentials succeeds."""
        account = self.lookup(username_or_email)
        if account is None or not account.activated:
            return False
        return account.credential.verify(password)

    def activate_by_token(self, token: str) -> SiteAccount | None:
        """Complete email verification; returns the activated account."""
        for account in self._by_username.values():
            if account.verification_token == token:
                account.activated = True
                account.verification_token = None
                return account
        return None

    def shard_of(self, account: SiteAccount) -> int:
        """Stable shard index for an account."""
        digest = hashlib.sha256(account.shard_key.encode("utf-8")).digest()
        return digest[0] % self.shard_count

    def dump_shards(self, shards: set[int] | None = None) -> list[SiteAccount]:
        """What a database breach exposes.

        ``None`` means all shards (the common, full-dump case).
        """
        accounts = sorted(self._by_username.values(), key=lambda a: a.username.lower())
        if shards is None:
            return accounts
        return [a for a in accounts if self.shard_of(a) in shards]

    def all_accounts(self) -> list[SiteAccount]:
        """Every account, ordered by username."""
        return self.dump_shards(None)
