"""HTML rendering for simulated sites.

Every page a site serves is built here as a genuine DOM and serialized
to HTML text; the crawler re-parses that text.  Field labeling styles
vary (``label for=``, wrapping labels, placeholder-only, adjacent
text) so the crawler's descriptor-gathering logic is actually
exercised.
"""

from __future__ import annotations

import html as _htmllib
from dataclasses import fields as _dataclass_fields

from repro.html.builder import el, page_skeleton, render_document
from repro.html.dom import Element
from repro.perf import caching as _perf
from repro.web.i18n import Lexicon
from repro.web.spec import BotCheck, LinkPlacement, RegistrationStyle, SiteSpec

#: English anchor-text variants for registration links; non-English
#: sites use their lexicon's ``sign_up`` string.
ENGLISH_ANCHOR_VARIANTS = (
    "Sign up", "Register", "Create an account", "Join now", "Join free",
    "Get started", "Sign up free", "Create account",
)

#: Anchor texts real sites use that the crawler's link heuristics do
#: NOT match — one of the §6.2.2 "registration page not obvious from
#: the text of the page" failure modes.
UNUSUAL_ANCHOR_VARIANTS = (
    "Become a member", "Open an account", "Start here", "My Account",
    "Get involved", "Membership",
)

#: Registration paths paired with unusual anchors (no signup/register
#: substring for the href heuristics to latch onto).
NEUTRAL_REGISTRATION_PATHS = ("/members", "/start", "/portal", "/welcome")


# -- render caches -----------------------------------------------------------
#
# Page rendering is pure: the HTML is fully determined by the SiteSpec,
# the Lexicon (itself determined by its language code) and the explicit
# arguments.  The only per-request values — captcha and stage tokens —
# are rendered as sentinel strings and substituted into the cached text,
# so a cache hit is byte-identical to a fresh render.

_HOMEPAGE_CACHE = _perf.LruCache(maxsize=1024, name="render-homepage")
_REGPAGE_CACHE = _perf.LruCache(maxsize=1024, name="render-registration")
_RESPONSE_CACHE = _perf.LruCache(maxsize=1024, name="render-response")

#: Sentinels never collide with real tokens (``ch-<host>-<n>`` /
#: ``st-<n>``) and contain no HTML-escapable characters, so they
#: survive serialization verbatim and can be textually replaced.
_CAPTCHA_SENTINEL = "repro-captcha-token-sentinel-2e97"
_STAGE_SENTINEL = "repro-stage-token-sentinel-2e97"

_SPEC_FIELD_NAMES = tuple(f.name for f in _dataclass_fields(SiteSpec))


def _spec_cache_key(spec: SiteSpec) -> tuple:
    """Every SiteSpec field, as a hashable tuple.

    SiteSpec is a plain mutable dataclass, so identity is not a safe
    key; embedding the full field vector means a mutated spec simply
    misses and the stale entry ages out of the LRU.
    """
    values = []
    for name in _SPEC_FIELD_NAMES:
        value = getattr(spec, name)
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        values.append(value)
    return tuple(values)


def _substitute_token(rendered: str, sentinel: str, token: str | None) -> str:
    if token is None:
        return rendered
    # Attribute serialization escapes values; escaping the replacement
    # the same way keeps cached output identical to a direct render.
    return rendered.replace(sentinel, _htmllib.escape(token, quote=True))


def _nav(spec: SiteSpec, lex: Lexicon) -> Element:
    nav = el("div", {"class": "nav"})
    nav.append(el("a", {"href": "/"}, "Home" if spec.is_english else lex.welcome))
    nav.append(el("a", {"href": "/about"}, "About" if spec.is_english else lex.filler[0]))
    nav.append(el("a", {"href": "/login"}, lex.log_in))
    if spec.advertises_registration and (
        spec.link_placement is LinkPlacement.PROMINENT
        or spec.registration_style is RegistrationStyle.EXTERNAL_ONLY
    ):
        nav.append(el("a", {"href": spec.registration_path, "class": "cta"}, spec.anchor_text))
    return nav


def _footer(spec: SiteSpec, lex: Lexicon) -> Element:
    footer = el("div", {"class": "footer"})
    footer.append(el("a", {"href": "/contact"}, "Contact" if spec.is_english else lex.filler[-1]))
    footer.append(el("a", {"href": "/privacy"}, "Privacy" if spec.is_english else lex.filler[1]))
    if spec.link_placement is LinkPlacement.FOOTER and spec.advertises_registration:
        footer.append(el("a", {"href": spec.registration_path}, spec.anchor_text))
    if spec.link_placement is LinkPlacement.IMAGE_ONLY and spec.advertises_registration:
        # The link exists but carries no anchor text — only an image,
        # whose meaning the crawler cannot read (§6.2.2).
        footer.append(
            el("a", {"href": spec.registration_path},
               el("img", {"src": "/static/join-button.png", "alt": ""}))
        )
    return footer


def _body_copy(spec: SiteSpec, lex: Lexicon) -> Element:
    copy = el("div", {"class": "content"})
    copy.append(el("h1", None, f"{spec.host.split('.')[0].title()} — {spec.category}"))
    sentence = " ".join(lex.filler) + "."
    for _ in range(3):
        copy.append(el("p", None, sentence))
    return copy


def render_homepage(spec: SiteSpec, lex: Lexicon) -> str:
    """The site's landing page."""
    if not _perf.enabled():
        return _render_homepage(spec, lex)
    key = (_spec_cache_key(spec), lex.lang)
    rendered = _HOMEPAGE_CACHE.get(key)
    if rendered is None:
        rendered = _render_homepage(spec, lex)
        _HOMEPAGE_CACHE.put(key, rendered)
    return rendered


def _render_homepage(spec: SiteSpec, lex: Lexicon) -> str:
    root, body = page_skeleton(f"{spec.host} — {spec.category}", lang=lex.lang)
    body.append(_nav(spec, lex))
    body.append(_body_copy(spec, lex))
    body.append(_footer(spec, lex))
    return render_document(root)


def _labeled_control(
    spec: SiteSpec,
    label_text: str,
    control: Element,
    wrapper: Element,
) -> None:
    """Attach a control to the form using the site's labeling style."""
    style = spec.label_style
    if style == "for" and control.get("id"):
        wrapper.append(el("label", {"for": control.get("id")}, label_text))
        wrapper.append(control)
    elif style == "wrap":
        wrapper.append(el("label", None, label_text, control))
    elif style == "placeholder":
        control.set("placeholder", label_text)
        wrapper.append(control)
    else:  # adjacent text
        wrapper.append(el("span", None, label_text))
        wrapper.append(control)


def _field(
    spec: SiteSpec,
    lex: Lexicon,
    semantic: str,
    label: str,
    input_type: str = "text",
    required: bool = True,
    maxlength: int | None = None,
) -> tuple[str, Element]:
    """Build one labeled input; returns (name attribute, row element)."""
    name = lex.field_names.get(semantic, semantic)
    attrs = {"type": input_type, "name": name, "id": f"f_{name}"}
    if required:
        attrs["required"] = ""
    if maxlength is not None:
        attrs["maxlength"] = str(maxlength)
    control = el("input", attrs)
    row = el("div", {"class": "row"})
    _labeled_control(spec, label, control, row)
    return name, row


def registration_fields(spec: SiteSpec, lex: Lexicon, step: int = 1) -> list[str]:
    """Semantic field list for a registration page (by stage)."""
    if spec.registration_style is RegistrationStyle.MULTISTAGE:
        if spec.multistage_credentials_first:
            if step == 1:
                fields = ["email"]
                if spec.wants_username:
                    fields.append("username")
                fields.append("password")
                if spec.wants_confirm_password:
                    fields.append("password_confirm")
                return fields
            fields = []
            if spec.wants_name:
                fields.extend(["first_name", "last_name"])
            if spec.wants_phone:
                fields.append("phone")
            return fields or ["first_name", "last_name"]
        if step == 1:
            fields = ["email"]
            if spec.wants_username:
                fields.append("username")
            return fields
        fields = ["password"]
        if spec.wants_confirm_password:
            fields.append("password_confirm")
        if spec.wants_name:
            fields.extend(["first_name", "last_name"])
        if spec.wants_phone:
            fields.append("phone")
        return fields
    fields = ["email"]
    if spec.wants_username:
        fields.append("username")
    fields.append("password")
    if spec.wants_confirm_password:
        fields.append("password_confirm")
    if spec.wants_name:
        fields.extend(["first_name", "last_name"])
    if spec.wants_phone:
        fields.append("phone")
    return fields


_LABELS = {
    "email": lambda lex: lex.email,
    "username": lambda lex: lex.username,
    "password": lambda lex: lex.password,
    "password_confirm": lambda lex: lex.confirm_password,
    "first_name": lambda lex: lex.first_name,
    "last_name": lambda lex: lex.last_name,
    "phone": lambda lex: lex.phone,
}

_TYPES = {
    "email": "email",
    "password": "password",
    "password_confirm": "password",
    "phone": "tel",
}


def render_registration_page(
    spec: SiteSpec,
    lex: Lexicon,
    step: int = 1,
    captcha_token: str | None = None,
    stage_token: str | None = None,
    error: str | None = None,
) -> str:
    """The registration form page (or a stage of it).

    Cached on the deterministic inputs; the per-request captcha/stage
    tokens are rendered as sentinels and substituted after a hit, so
    token freshness is preserved while the DOM build and serialization
    run once per (spec, language, step, token-presence, error) shape.
    """
    if not _perf.enabled():
        return _render_registration_page(spec, lex, step, captcha_token,
                                         stage_token, error)
    key = (_spec_cache_key(spec), lex.lang, step,
           captcha_token is not None, stage_token is not None, error)
    rendered = _REGPAGE_CACHE.get(key)
    if rendered is None:
        rendered = _render_registration_page(
            spec, lex, step,
            _CAPTCHA_SENTINEL if captcha_token is not None else None,
            _STAGE_SENTINEL if stage_token is not None else None,
            error,
        )
        _REGPAGE_CACHE.put(key, rendered)
    rendered = _substitute_token(rendered, _CAPTCHA_SENTINEL, captcha_token)
    return _substitute_token(rendered, _STAGE_SENTINEL, stage_token)


def _render_registration_page(
    spec: SiteSpec,
    lex: Lexicon,
    step: int = 1,
    captcha_token: str | None = None,
    stage_token: str | None = None,
    error: str | None = None,
) -> str:
    root, body = page_skeleton(f"{spec.anchor_text} — {spec.host}", lang=lex.lang)
    body.append(_nav(spec, lex))
    container = el("div", {"class": "register"})
    container.append(el("h2", None, spec.anchor_text))
    if error:
        container.append(el("div", {"class": "error"}, error))

    if spec.registration_style is RegistrationStyle.EXTERNAL_ONLY:
        container.append(el("p", None, lex.sign_up))
        container.append(el("a", {"href": "https://oauth.example/google", "class": "oauth"},
                            "Continue with Google"))
        container.append(el("a", {"href": "https://oauth.example/facebook", "class": "oauth"},
                            "Continue with Facebook"))
        body.append(container)
        body.append(_footer(spec, lex))
        return render_document(root)

    is_multistage = spec.registration_style is RegistrationStyle.MULTISTAGE
    action = spec.registration_path + ("/step2" if is_multistage and step == 1 else "/submit")
    form = el("form", {"action": action, "method": "post", "id": "register-form"})

    for semantic in registration_fields(spec, lex, step):
        label = _LABELS[semantic](lex)
        input_type = _TYPES.get(semantic, "text")
        maxlength = None
        if semantic == "email" and spec.max_email_length is not None:
            maxlength = None  # the limit is enforced server side, invisibly
        if semantic == "username" and spec.max_username_length is not None:
            maxlength = spec.max_username_length
        _name, row = _field(spec, lex, semantic, label, input_type, maxlength=maxlength)
        form.append(row)

    if spec.wants_birthdate and (not is_multistage or step > 1):
        form.append(_birthdate_row(spec, lex))
    if spec.wants_gender and (not is_multistage or step > 1):
        form.append(_gender_row(spec, lex))

    if spec.registration_style is RegistrationStyle.PAYMENT_REQUIRED and (not is_multistage or step > 1):
        _name, row = _field(spec, lex, "card_number", "Credit card number")
        form.append(row)
        _name, row = _field(spec, lex, "card_cvv", "CVV", maxlength=4)
        form.append(row)

    if spec.extra_unlabeled_field and (not is_multistage or step > 1):
        # An opaque field no heuristic can interpret.  When marked
        # required it aborts the fill (a "fields missing" exit after
        # credentials were typed); when not, the crawler skips it, the
        # server silently rejects, and an ambiguous response page turns
        # into an invalid "OK submission" (Table 1's 59% validity).
        attrs = {"type": "text", "name": "x_fld_71"}
        if spec.extra_field_required:
            attrs["required"] = ""
        form.append(el("div", {"class": "row"}, el("input", attrs)))

    final_step = not is_multistage or step > 1
    if final_step and spec.bot_check is not BotCheck.NONE:
        form.append(_bot_check_row(spec, lex, captcha_token))

    if final_step and spec.wants_terms_checkbox:
        terms_box = el("input", {"type": "checkbox", "name": lex.field_names["terms"],
                                 "id": "f_terms", "value": "1", "required": ""})
        row = el("div", {"class": "row"})
        _labeled_control(spec, lex.terms, terms_box, row)
        form.append(row)

    if stage_token is not None:
        form.append(el("input", {"type": "hidden", "name": "stage_token", "value": stage_token}))

    submit_label = "Continue" if (is_multistage and step == 1 and spec.is_english) else lex.submit
    form.append(el("button", {"type": "submit"}, submit_label))
    container.append(form)
    body.append(container)
    body.append(_footer(spec, lex))
    return render_document(root)


def _select(name: str, options: list[str], placeholder: str) -> Element:
    control = el("select", {"name": name, "id": f"f_{name}"})
    control.append(el("option", {"value": ""}, placeholder))
    for option in options:
        control.append(el("option", {"value": option}, option))
    return control


def _birthdate_row(spec: SiteSpec, lex: Lexicon) -> Element:
    """Month/day/year dropdowns — select controls the crawler must fill."""
    row = el("div", {"class": "row birthdate"})
    label = "Date of birth" if spec.is_english else lex.filler[0]
    row.append(el("span", None, label))
    row.append(_select("birth_month", [str(m) for m in range(1, 13)], "Month"))
    row.append(_select("birth_day", [str(d) for d in range(1, 29)], "Day"))
    row.append(_select("birth_year", [str(y) for y in range(1940, 2006)], "Year"))
    return row


def _gender_row(spec: SiteSpec, lex: Lexicon) -> Element:
    row = el("div", {"class": "row gender"})
    label = "Gender" if spec.is_english else lex.filler[-1]
    row.append(el("span", None, label))
    row.append(_select("gender", ["M", "F", "Other"], "Select"))
    return row


def _bot_check_row(spec: SiteSpec, lex: Lexicon, captcha_token: str | None) -> Element:
    row = el("div", {"class": "row captcha"})
    name = lex.field_names["captcha"]
    if spec.bot_check is BotCheck.CAPTCHA_IMAGE:
        row.append(el("img", {"src": "/captcha.png", "alt": "captcha"}))
        control = el("input", {
            "type": "text", "name": name, "id": f"f_{name}",
            "data-challenge": captcha_token or "", "required": "",
        })
        _labeled_control(spec, lex.captcha_prompt, control, row)
    elif spec.bot_check is BotCheck.KNOWLEDGE_QUESTION:
        control = el("input", {
            "type": "text", "name": name, "id": f"f_{name}",
            "data-challenge": captcha_token or "", "required": "",
        })
        question = ("What do you get when you add three and four?"
                    if spec.is_english else lex.captcha_prompt)
        _labeled_control(spec, question, control, row)
    else:  # INTERACTIVE — a widget with no fillable input at all
        row.append(el("div", {"class": "g-recaptcha", "data-sitekey": "sim"}, "I am not a robot"))
        row.append(el("input", {"type": "hidden", "name": f"{name}_response", "value": ""}))
    if captcha_token is not None:
        # Session surrogate: ties the submission back to the challenge.
        row.append(el("input", {"type": "hidden", "name": "_challenge_token",
                                "value": captcha_token}))
    return row


def render_response_page(spec: SiteSpec, lex: Lexicon, ok: bool, error: str | None = None) -> str:
    """The page shown after a submission, honoring the response style."""
    if not _perf.enabled():
        return _render_response_page(spec, lex, ok, error)
    key = (_spec_cache_key(spec), lex.lang, ok, error)
    rendered = _RESPONSE_CACHE.get(key)
    if rendered is None:
        rendered = _render_response_page(spec, lex, ok, error)
        _RESPONSE_CACHE.put(key, rendered)
    return rendered


def _render_response_page(spec: SiteSpec, lex: Lexicon, ok: bool, error: str | None = None) -> str:
    from repro.web.spec import ResponseStyle

    root, body = page_skeleton(spec.host, lang=lex.lang)
    body.append(_nav(spec, lex))
    box = el("div", {"class": "message"})
    if spec.response_style is ResponseStyle.CLEAR:
        if ok:
            box.append(el("h2", None, lex.welcome))
            box.append(el("p", None, lex.success))
        else:
            box.append(el("h2", None, "Error" if spec.is_english else lex.error_missing))
            box.append(el("p", None, error or lex.error_missing))
    elif spec.response_style is ResponseStyle.NOISY:
        # Boilerplate that reads like an error regardless of outcome —
        # the crawler's keyword heuristics misjudge these pages.
        if ok:
            box.append(el("p", None, lex.welcome))
        box.append(el("p", None,
                      "If you entered an invalid email address, try again "
                      "or contact support to report the problem with registration."
                      if spec.is_english else lex.error_missing))
    else:
        # The same noncommittal page regardless of outcome.
        neutral = ("Thank you for visiting. Check your email for more information."
                   if spec.is_english else lex.welcome)
        box.append(el("p", None, neutral))
    body.append(box)
    body.append(_footer(spec, lex))
    return render_document(root)


def render_verification_landing(spec: SiteSpec, lex: Lexicon, ok: bool) -> str:
    """Landing page for verification-link clicks."""
    root, body = page_skeleton(f"Verification — {spec.host}", lang=lex.lang)
    if ok:
        body.append(el("p", None, "Your email address has been confirmed."
                       if spec.is_english else lex.success))
    else:
        body.append(el("p", None, "Invalid or expired verification token."
                       if spec.is_english else lex.error_missing))
    return render_document(root)


def render_load_failure() -> str:
    """Body for a site whose page fails to render meaningfully."""
    return "<html><body></body></html>"
