"""The captcha challenge/answer contract.

Sites embed a challenge token in the page; the expected answer is a
pure function of the token.  This stands in for the captcha *image*:
the site knows the answer behind the token, and the third-party solving
service (humans looking at the image) can usually — but not always —
produce it.  Nothing in the crawler computes answers itself; it only
relays tokens to a solver.
"""

from __future__ import annotations

import hashlib


def captcha_answer_for(token: str) -> str:
    """The ground-truth solution for a challenge token."""
    return hashlib.sha256(f"captcha|{token}".encode("utf-8")).hexdigest()[:6]
