"""Identity generation (Section 4.1.1).

Usernames/email local-parts take the form adjective + noun + four-digit
number (``ArguableGem8317``): plausible-looking yet very unlikely to be
taken.  Each factory guarantees that, within a run, no two identities
share an email local-part or phone number.
"""

from __future__ import annotations

from repro.data.identity_corpus import (
    AREA_CODES,
    CITIES,
    EMPLOYERS,
    FEMALE_FIRST_NAMES,
    LAST_NAMES,
    MALE_FIRST_NAMES,
    STREET_NAMES,
    STREET_SUFFIXES,
)
from repro.data.words import ADJECTIVES, NOUNS
from repro.identity.passwords import (
    PasswordClass,
    generate_easy_password,
    generate_hard_password,
)
from repro.identity.records import Identity, PostalAddress
from repro.util.rngtree import RngTree
from repro.util.timeutil import instant_from_date


class IdentityFactory:
    """Deterministically generates unique identities."""

    def __init__(self, rng_tree: RngTree, email_domain: str = "bigmail.example"):
        self._rng = rng_tree.child("identity-factory").rng()
        self._email_domain = email_domain
        self._next_id = 1
        self._used_locals: set[str] = set()
        self._used_phones: set[str] = set()

    @property
    def email_domain(self) -> str:
        """The provider domain identities are homed at."""
        return self._email_domain

    def _unique_email_local(self) -> str:
        while True:
            adjective = self._rng.choice(ADJECTIVES)
            noun = self._rng.choice(NOUNS)
            number = self._rng.randrange(1000, 10000)
            local = f"{adjective}{noun}{number}"
            if local.lower() not in self._used_locals:
                self._used_locals.add(local.lower())
                return local

    def _unique_phone(self) -> str:
        while True:
            area = self._rng.choice(AREA_CODES)
            exchange = self._rng.randrange(200, 1000)
            line = self._rng.randrange(0, 10000)
            phone = f"{area}-{exchange:03d}-{line:04d}"
            if phone not in self._used_phones:
                self._used_phones.add(phone)
                return phone

    def _address(self) -> PostalAddress:
        number = self._rng.randrange(10, 9900)
        street = (
            f"{number} {self._rng.choice(STREET_NAMES)} "
            f"{self._rng.choice(STREET_SUFFIXES)}"
        )
        city, state, zip_prefix = self._rng.choice(CITIES)
        zip_code = f"{zip_prefix}{self._rng.randrange(100):02d}"
        return PostalAddress(street=street, city=city, state=state, zip_code=zip_code)

    def create(self, password_class: PasswordClass) -> Identity:
        """Generate one new identity of the given password class."""
        rng = self._rng
        if rng.random() < 0.5:
            first_name, gender = rng.choice(MALE_FIRST_NAMES), "M"
        else:
            first_name, gender = rng.choice(FEMALE_FIRST_NAMES), "F"
        if password_class is PasswordClass.HARD:
            password = generate_hard_password(rng)
        else:
            password = generate_easy_password(rng)
        dob = instant_from_date(
            rng.randrange(1955, 1998), rng.randrange(1, 13), rng.randrange(1, 29)
        )
        identity = Identity(
            identity_id=self._next_id,
            first_name=first_name,
            last_name=rng.choice(LAST_NAMES),
            gender=gender,
            date_of_birth=dob,
            address=self._address(),
            phone=self._unique_phone(),
            employer=rng.choice(EMPLOYERS),
            email_local=self._unique_email_local(),
            email_domain=self._email_domain,
            password=password,
            password_class=password_class,
        )
        self._next_id += 1
        return identity

    def create_batch(self, count: int, password_class: PasswordClass) -> list[Identity]:
        """Generate ``count`` identities of one class."""
        return [self.create(password_class) for _ in range(count)]
