"""Identity record types."""

from __future__ import annotations

from dataclasses import dataclass

from repro.identity.passwords import PasswordClass
from repro.util.timeutil import SimInstant

#: Sites frequently cap username length; Tripwire uses the first 14
#: characters of the email local-part as the site username (§4.1.1).
SITE_USERNAME_MAX = 14


@dataclass(frozen=True)
class PostalAddress:
    """A syntactically valid (if not necessarily extant) US address."""

    street: str
    city: str
    state: str
    zip_code: str

    def one_line(self) -> str:
        """Single-line rendering for address form fields."""
        return f"{self.street}, {self.city}, {self.state} {self.zip_code}"


@dataclass(frozen=True)
class Identity:
    """A complete fictitious identity.

    The email local-part doubles as the username base; the password is
    shared verbatim between the email account and any site registration
    made with this identity — that sharing *is* the tripwire.
    """

    identity_id: int
    first_name: str
    last_name: str
    gender: str
    date_of_birth: SimInstant
    address: PostalAddress
    phone: str
    employer: str
    email_local: str
    email_domain: str
    password: str
    password_class: PasswordClass

    @property
    def full_name(self) -> str:
        """First plus last name."""
        return f"{self.first_name} {self.last_name}"

    @property
    def email_address(self) -> str:
        """The provider email address, e.g. ``ArguableGem8317@bigmail.example``."""
        return f"{self.email_local}@{self.email_domain}"

    @property
    def site_username(self) -> str:
        """Username for sites requiring one distinct from the email.

        The first 14 characters of the local-part, per Section 4.1.1.
        """
        return self.email_local[:SITE_USERNAME_MAX]

    def form_value_for(self, meaning: str) -> str | None:
        """The value this identity supplies for a semantic field meaning.

        ``meaning`` is one of the crawler's field-classifier categories
        (see :mod:`repro.crawler.fields`).  Returns None for meanings an
        identity cannot satisfy (e.g. credit card numbers).
        """
        from repro.util.timeutil import instant_to_datetime

        dob = instant_to_datetime(self.date_of_birth)
        mapping: dict[str, str] = {
            "email": self.email_address,
            "email_confirm": self.email_address,
            "password": self.password,
            "password_confirm": self.password,
            "username": self.site_username,
            "first_name": self.first_name,
            "last_name": self.last_name,
            "full_name": self.full_name,
            "phone": self.phone,
            "address": self.address.one_line(),
            "street": self.address.street,
            "city": self.address.city,
            "state": self.address.state,
            "zip": self.address.zip_code,
            "birth_year": str(dob.year),
            "birth_month": str(dob.month),
            "birth_day": str(dob.day),
            "birthdate": dob.strftime("%m/%d/%Y"),
            "employer": self.employer,
            "gender": self.gender,
        }
        return mapping.get(meaning)
