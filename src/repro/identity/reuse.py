"""Cross-site password reuse: the seam credential stuffing attacks.

Wang & Reiter's framing (PAPERS.md): a user's accounts at *other*
sites are the attacker's best guess for their account *here*.  This
module gives the benign population that seam — a seeded fraction of
users reuse their provider password verbatim at the websites they
join, another fraction derive a per-site variant, and the rest keep
every site password unique.

Everything is a **pure function of (namespace key, user index, site
rank)**: one 64-bit key is derived from an :class:`~repro.util.
rngtree.RngTree` label path (no RNG object is ever advanced), and a
splitmix64 finalizer turns ``key ⊕ lane ⊕ user ⊕ site`` into the
behavior class, the per-site account membership coin and the per-site
password material.  Purity buys the properties the columnar world
depends on:

- **order independence** — any subset of users/sites evaluated in any
  order yields the same values, so warm caches, resumed runs and the
  world store never disagree;
- **prefix closure** — growing the population from ``n`` to ``n′``
  users leaves the first ``n`` users' behaviors, memberships and
  passwords untouched;
- **columnar evaluation** — every lane has a vectorized uint64 form
  (numpy, import gated) that is bit-identical to the scalar form, so
  the stuffing engine can derive whole membership columns at once.

The provider-side mailbox password stays
:func:`~repro.traffic.population.benign_password` for every class —
what varies is what the *websites* store, and therefore what a breach
corpus replays: EXACT reusers are the stuffable fraction, DERIVED
users leak a near-miss variant, UNIQUE users leak noise.
"""

from __future__ import annotations

import enum
import hashlib
from array import array

from repro.traffic.population import benign_password
from repro.util.rngtree import RngTree

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    np = None

_MASK64 = (1 << 64) - 1

#: splitmix64 finalizer constants.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB

#: Odd multipliers spreading the user index and site rank before the
#: finalizer (distinct so (i, rank) and (rank, i) never alias).
_USER_MUL = 0x9E3779B97F4A7C15
_SITE_MUL = 0xC2B2AE3D27D4EB4F


def _lane_salt(lane: str) -> int:
    """A stable 64-bit salt per named lane (behavior/member/…)."""
    digest = hashlib.sha256(b"cross-site-reuse-lane:" + lane.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


_BEHAVIOR_SALT = _lane_salt("behavior")
_MEMBER_SALT = _lane_salt("member")
_DERIVE_SALT = _lane_salt("derive")
_UNIQUE_SALT = _lane_salt("unique")
_CRACK_SALT = _lane_salt("crack")


def _mix64(x: int) -> int:
    """splitmix64 finalizer over python ints (masked to 64 bits)."""
    x = (x + _SM_GAMMA) & _MASK64
    x ^= x >> 30
    x = (x * _SM_MUL1) & _MASK64
    x ^= x >> 27
    x = (x * _SM_MUL2) & _MASK64
    x ^= x >> 31
    return x


def _threshold(rate: float) -> int:
    """A probability as an integer threshold over the full 64-bit range."""
    if rate <= 0.0:
        return 0
    if rate >= 1.0:
        return 1 << 64
    return round(rate * float(1 << 64))


class ReuseClass(enum.IntEnum):
    """How a user manages passwords across sites.

    Codes are the columnar byte encoding; UNIQUE must stay 0 so an
    all-zero column means "nobody reuses anything".
    """

    UNIQUE = 0  #: a fresh password per site; breaches leak noise
    EXACT = 1  #: the provider password verbatim at every site
    DERIVED = 2  #: a per-site variant of the provider password


class CrossSiteReuseModel:
    """Pure-function map from (user, site) to membership and password.

    ``key`` seeds every lane; build it from a tree path with
    :meth:`from_tree` so the model rides the simulation's single root
    seed without consuming anyone's RNG stream.
    """

    __slots__ = ("key", "exact_rate", "derive_rate", "site_density",
                 "_t_exact", "_t_derived", "_t_member")

    def __init__(
        self,
        key: int,
        exact_rate: float = 0.3,
        derive_rate: float = 0.3,
        site_density: float = 0.05,
    ):
        if exact_rate < 0 or derive_rate < 0 or exact_rate + derive_rate > 1:
            raise ValueError("reuse-class rates must form a sub-distribution")
        if not 0 <= site_density <= 1:
            raise ValueError("site_density must be a probability")
        self.key = key & _MASK64
        self.exact_rate = exact_rate
        self.derive_rate = derive_rate
        self.site_density = site_density
        self._t_exact = _threshold(exact_rate)
        self._t_derived = _threshold(exact_rate + derive_rate)
        self._t_member = _threshold(site_density)

    @classmethod
    def from_tree(
        cls,
        tree: RngTree,
        exact_rate: float = 0.3,
        derive_rate: float = 0.3,
        site_density: float = 0.05,
    ) -> "CrossSiteReuseModel":
        """Derive the lane key from ``tree.child("cross-site-reuse")``.

        Uses the node's derived seed directly — no ``random.Random``
        is created, so building the model can never perturb any other
        consumer's stream.
        """
        key = tree.child("cross-site-reuse").derived_seed() & _MASK64
        return cls(key, exact_rate, derive_rate, site_density)

    # -- scalar lanes (the oracle) ------------------------------------------

    def _lane(self, salt: int, user: int, site_rank: int) -> int:
        v = (self.key ^ salt) & _MASK64
        v = (v + user * _USER_MUL) & _MASK64
        v = (v + site_rank * _SITE_MUL) & _MASK64
        return _mix64(v)

    def behavior(self, user: int) -> ReuseClass:
        """The user's :class:`ReuseClass` (site-independent)."""
        h = self._lane(_BEHAVIOR_SALT, user, 0)
        if h < self._t_exact:
            return ReuseClass.EXACT
        if h < self._t_derived:
            return ReuseClass.DERIVED
        return ReuseClass.UNIQUE

    def has_account(self, user: int, site_rank: int) -> bool:
        """Does the user hold an account at site ``site_rank``?"""
        return self._lane(_MEMBER_SALT, user, site_rank) < self._t_member

    def site_password(self, user: int, site_rank: int) -> str:
        """What site ``site_rank`` stores for the user.

        EXACT: the provider mailbox password verbatim (the stuffable
        case).  DERIVED: the mailbox password plus a per-site suffix.
        UNIQUE: unrelated per-site material.
        """
        behavior = self.behavior(user)
        if behavior is ReuseClass.EXACT:
            return benign_password(user)
        if behavior is ReuseClass.DERIVED:
            suffix = self._lane(_DERIVE_SALT, user, site_rank) & 0xFFFF
            return benign_password(user) + ".%04x" % suffix
        return "sw-%016x" % self._lane(_UNIQUE_SALT, user, site_rank)

    def crack_recovered(self, user: int, site_rank: int, crack_rate: float) -> bool:
        """Offline-cracking coin: did the attacker recover this hash?

        A corpus-level knob, not a user trait, so the rate is passed
        in; the lane is still pure per (user, site).
        """
        return self._lane(_CRACK_SALT, user, site_rank) < _threshold(crack_rate)

    # -- columnar lanes (bit-identical to the scalar forms) -----------------

    def _lane_np(self, salt: int, users, site_rank: int):
        v = np.uint64((self.key ^ salt) & _MASK64)
        with np.errstate(over="ignore"):
            x = users.astype(np.uint64) * np.uint64(_USER_MUL)
            x += v + np.uint64((site_rank * _SITE_MUL) & _MASK64)
            x += np.uint64(_SM_GAMMA)
            x ^= x >> np.uint64(30)
            x *= np.uint64(_SM_MUL1)
            x ^= x >> np.uint64(27)
            x *= np.uint64(_SM_MUL2)
            x ^= x >> np.uint64(31)
        return x

    def behaviors(self, users) -> bytearray:
        """:class:`ReuseClass` codes for a user-index column."""
        if np is None:
            return bytearray(self.behavior(int(u)) for u in users)
        users_np = np.asarray(users, dtype=np.int64)
        h = self._lane_np(_BEHAVIOR_SALT, users_np, 0)
        codes = np.zeros(len(users_np), dtype=np.uint8)
        if self._t_derived > _MASK64:  # rate sums to 1: nobody is UNIQUE
            codes[:] = ReuseClass.DERIVED
        else:
            codes[h < np.uint64(self._t_derived)] = ReuseClass.DERIVED
        if self._t_exact > _MASK64:
            codes[:] = ReuseClass.EXACT
        else:
            codes[h < np.uint64(self._t_exact)] = ReuseClass.EXACT
        return bytearray(codes.tobytes())

    def members(self, site_rank: int, population: int):
        """Sorted user indices (``array('q')``) with accounts at a site.

        Pure per (user, site): ``members(rank, n)`` is always a prefix
        of ``members(rank, n′)`` for ``n′ ≥ n``.
        """
        out = array("q")
        if population <= 0:
            return out
        if np is None:
            out.extend(
                u for u in range(population) if self.has_account(u, site_rank)
            )
            return out
        users_np = np.arange(population, dtype=np.int64)
        h = self._lane_np(_MEMBER_SALT, users_np, site_rank)
        if self._t_member > _MASK64:
            hits = users_np
        else:
            hits = users_np[h < np.uint64(self._t_member)]
        out.frombytes(hits.tobytes())
        return out

    def site_passwords(self, users, site_rank: int) -> list[str]:
        """Site-stored passwords for a user-index column.

        String minting is python-level either way; the class and
        suffix lanes are evaluated columnar first so the loop only
        formats.
        """
        if np is None:
            return [self.site_password(int(u), site_rank) for u in users]
        users_np = np.asarray(users, dtype=np.int64)
        codes = self.behaviors(users_np)
        derive_h = self._lane_np(_DERIVE_SALT, users_np, site_rank)
        unique_h = self._lane_np(_UNIQUE_SALT, users_np, site_rank)
        suffixes = (derive_h & np.uint64(0xFFFF)).tolist()
        uniques = unique_h.tolist()
        out = []
        out_append = out.append
        for i, user in enumerate(users_np.tolist()):
            code = codes[i]
            if code == ReuseClass.EXACT:
                out_append(benign_password(user))
            elif code == ReuseClass.DERIVED:
                out_append(benign_password(user) + ".%04x" % suffixes[i])
            else:
                out_append("sw-%016x" % uniques[i])
        return out

    def cracked_mask(self, users, site_rank: int, crack_rate: float):
        """Columnar :meth:`crack_recovered` over a user-index column."""
        t = _threshold(crack_rate)
        if np is None:
            return [
                self._lane(_CRACK_SALT, int(u), site_rank) < t for u in users
            ]
        users_np = np.asarray(users, dtype=np.int64)
        if t > _MASK64:
            return np.ones(len(users_np), dtype=bool)
        h = self._lane_np(_CRACK_SALT, users_np, site_rank)
        return h < np.uint64(t)
