"""Password classes and generators (Section 4.1.2).

Two deliberate strengths distinguish compromise modes:

- **easy** — an eight-character string: one seven-letter dictionary word
  with its first letter capitalized, followed by one digit
  (``Website1``).  Trivially recovered by a dictionary attack against
  hashed password databases.
- **hard** — a random ten-character mixed-case alphanumeric string
  (``i5Nss87yf3``).  Practically immune to brute force, so any access
  to a hard-password account implies plaintext storage, a reversible
  hash, or online credential capture.

Neither class uses special characters: few sites require them and some
reject them, and avoiding them lets the crawler ignore per-site password
policy (the paper's simplification, which we reproduce).
"""

from __future__ import annotations

import enum
import random
import string

from repro.data.words import DICTIONARY_WORDS

HARD_PASSWORD_LENGTH = 10
EASY_PASSWORD_LENGTH = 8

_ALPHANUMERIC = string.ascii_letters + string.digits


class PasswordClass(enum.Enum):
    """Deliberate password strength of a Tripwire identity."""

    EASY = "easy"
    HARD = "hard"


def generate_hard_password(rng: random.Random) -> str:
    """A random 10-character mixed-case alphanumeric password.

    Guaranteed to contain at least one lowercase letter, one uppercase
    letter and one digit so that it passes common complexity policies.
    """
    while True:
        candidate = "".join(rng.choice(_ALPHANUMERIC) for _ in range(HARD_PASSWORD_LENGTH))
        has_lower = any(c.islower() for c in candidate)
        has_upper = any(c.isupper() for c in candidate)
        has_digit = any(c.isdigit() for c in candidate)
        if has_lower and has_upper and has_digit:
            return candidate


def generate_easy_password(rng: random.Random) -> str:
    """A capitalized seven-letter dictionary word plus one digit."""
    word = rng.choice(DICTIONARY_WORDS)
    return word.capitalize() + str(rng.randrange(10))


def is_valid_hard_password(password: str) -> bool:
    """Whether a string matches the hard-password recipe."""
    if len(password) != HARD_PASSWORD_LENGTH:
        return False
    if not all(c in _ALPHANUMERIC for c in password):
        return False
    return (
        any(c.islower() for c in password)
        and any(c.isupper() for c in password)
        and any(c.isdigit() for c in password)
    )


def is_valid_easy_password(password: str) -> bool:
    """Whether a string matches the easy-password recipe."""
    if len(password) != EASY_PASSWORD_LENGTH:
        return False
    word, digit = password[:7], password[7]
    if not digit.isdigit():
        return False
    return word.lower() in DICTIONARY_WORDS and word[0].isupper() and word[1:].islower()


def classify_password(password: str) -> PasswordClass | None:
    """Classify a password string, or None if it matches neither recipe."""
    if is_valid_easy_password(password):
        return PasswordClass.EASY
    if is_valid_hard_password(password):
        return PasswordClass.HARD
    return None


def dictionary_for_cracking() -> tuple[str, ...]:
    """The word list an attacker's dictionary attack would include.

    Attackers mangle common dictionaries with capitalization and digit
    suffixes — exactly the transformation that recovers easy passwords.
    """
    return DICTIONARY_WORDS
