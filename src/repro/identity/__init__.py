"""Tripwire identities (Section 4.1).

Each honey account is backed by a fictitious identity: full name, US
address, phone number, date of birth, employer, a plausible username of
the form ``AdjectiveNoun####`` and exactly one password (easy or hard)
shared between the email account and the website registration — the
password-reuse bait at the heart of the technique.
"""

from repro.identity.passwords import (
    PasswordClass,
    classify_password,
    generate_easy_password,
    generate_hard_password,
    is_valid_easy_password,
    is_valid_hard_password,
)
from repro.identity.records import Identity, PostalAddress
from repro.identity.reuse import CrossSiteReuseModel, ReuseClass
from repro.identity.generator import IdentityFactory
from repro.identity.pool import IdentityPool, IdentityState, BurnedIdentityError

__all__ = [
    "PasswordClass",
    "generate_easy_password",
    "generate_hard_password",
    "classify_password",
    "is_valid_easy_password",
    "is_valid_hard_password",
    "Identity",
    "PostalAddress",
    "CrossSiteReuseModel",
    "ReuseClass",
    "IdentityFactory",
    "IdentityPool",
    "IdentityState",
    "BurnedIdentityError",
]
