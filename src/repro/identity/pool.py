"""The identity pool and its burn semantics (Section 4.3.1).

An identity may be *checked out* for a registration attempt at one site.
If the email address or password is ever shown to the site — regardless
of whether the crawler believes the submission succeeded — the identity
is **burned**: permanently associated with that site and never reusable
elsewhere.  If the attempt failed before exposing credentials, the
identity returns to the pool.

This one-to-one mapping is what makes a later email login attributable
to exactly one site.
"""

from __future__ import annotations

import enum

from repro.identity.records import Identity
from repro.perf import caching as _perf


class IdentityState(enum.Enum):
    """Lifecycle of an identity within the pool."""

    AVAILABLE = "available"
    CHECKED_OUT = "checked_out"
    BURNED = "burned"
    CONTROL = "control"


class BurnedIdentityError(RuntimeError):
    """An operation was attempted on an identity burned to another site."""


class UnknownIdentityError(KeyError):
    """The pool has never seen this identity."""


class IdentityPool:
    """Tracks identity lifecycle and the identity↔site mapping."""

    def __init__(self) -> None:
        self._identities: dict[int, Identity] = {}
        self._states: dict[int, IdentityState] = {}
        self._checked_out_to: dict[int, str] = {}
        self._burned_to: dict[int, str] = {}
        # Email index for identity_for_email; identities are append-only
        # and their email addresses immutable, so the index never goes
        # stale.  setdefault preserves the linear scan's first-match
        # semantics should two identities ever share an address.
        self._by_email: dict[str, Identity] = {}

    # -- intake -------------------------------------------------------------

    def add(self, identity: Identity) -> None:
        """Add a fresh identity to the available pool."""
        if identity.identity_id in self._identities:
            raise ValueError(f"identity {identity.identity_id} already pooled")
        self._identities[identity.identity_id] = identity
        self._states[identity.identity_id] = IdentityState.AVAILABLE
        self._by_email.setdefault(identity.email_address.lower(), identity)

    def add_control(self, identity: Identity) -> None:
        """Add a control identity: monitored, never used on any site."""
        if identity.identity_id in self._identities:
            raise ValueError(f"identity {identity.identity_id} already pooled")
        self._identities[identity.identity_id] = identity
        self._states[identity.identity_id] = IdentityState.CONTROL
        self._by_email.setdefault(identity.email_address.lower(), identity)

    # -- checkout / burn ----------------------------------------------------

    def checkout(self, identity_id: int, site_host: str) -> Identity:
        """Reserve an available identity for a registration at a site."""
        state = self._state_of(identity_id)
        if state is not IdentityState.AVAILABLE:
            raise BurnedIdentityError(
                f"identity {identity_id} is {state.value}, cannot check out"
            )
        self._states[identity_id] = IdentityState.CHECKED_OUT
        self._checked_out_to[identity_id] = site_host.lower()
        return self._identities[identity_id]

    def checkout_any(self, site_host: str, password_class: object | None = None) -> Identity | None:
        """Reserve the lowest-id available identity, or None if empty.

        ``password_class`` restricts the search to identities of one
        :class:`repro.identity.passwords.PasswordClass`.
        """
        for identity_id in sorted(self._states):
            if self._states[identity_id] is not IdentityState.AVAILABLE:
                continue
            identity = self._identities[identity_id]
            if password_class is not None and identity.password_class is not password_class:
                continue
            return self.checkout(identity_id, site_host)
        return None

    def burn(self, identity_id: int) -> None:
        """Permanently associate a checked-out identity with its site.

        Called the moment credentials were exposed to the site,
        regardless of the submission outcome.
        """
        state = self._state_of(identity_id)
        if state is IdentityState.BURNED:
            return  # burning is idempotent
        if state is not IdentityState.CHECKED_OUT:
            raise BurnedIdentityError(f"identity {identity_id} is {state.value}, cannot burn")
        self._states[identity_id] = IdentityState.BURNED
        self._burned_to[identity_id] = self._checked_out_to.pop(identity_id)

    def release(self, identity_id: int) -> None:
        """Return a checked-out identity to the pool (nothing exposed)."""
        state = self._state_of(identity_id)
        if state is not IdentityState.CHECKED_OUT:
            raise BurnedIdentityError(f"identity {identity_id} is {state.value}, cannot release")
        self._states[identity_id] = IdentityState.AVAILABLE
        self._checked_out_to.pop(identity_id)

    # -- queries ------------------------------------------------------------

    def _state_of(self, identity_id: int) -> IdentityState:
        state = self._states.get(identity_id)
        if state is None:
            raise UnknownIdentityError(identity_id)
        return state

    def state(self, identity_id: int) -> IdentityState:
        """Current lifecycle state."""
        return self._state_of(identity_id)

    def get(self, identity_id: int) -> Identity:
        """Fetch an identity record by id."""
        identity = self._identities.get(identity_id)
        if identity is None:
            raise UnknownIdentityError(identity_id)
        return identity

    def site_for(self, identity_id: int) -> str | None:
        """The site an identity is burned to (or checked out for)."""
        if identity_id in self._burned_to:
            return self._burned_to[identity_id]
        return self._checked_out_to.get(identity_id)

    def identity_for_email(self, email_address: str) -> Identity | None:
        """Look up an identity by its provider email address."""
        wanted = email_address.lower()
        if _perf.enabled():
            return self._by_email.get(wanted)
        for identity in self._identities.values():
            if identity.email_address.lower() == wanted:
                return identity
        return None

    def burned_identities(self) -> list[tuple[Identity, str]]:
        """All burned identities with the site each is bound to."""
        return [
            (self._identities[identity_id], site)
            for identity_id, site in sorted(self._burned_to.items())
        ]

    def identities_for_site(self, site_host: str) -> list[Identity]:
        """All identities burned to one site."""
        wanted = site_host.lower()
        return [
            self._identities[identity_id]
            for identity_id, site in sorted(self._burned_to.items())
            if site == wanted
        ]

    def count_by_state(self) -> dict[IdentityState, int]:
        """Histogram of identity states."""
        counts = {state: 0 for state in IdentityState}
        for state in self._states.values():
            counts[state] += 1
        return counts

    def all_identities(self) -> list[Identity]:
        """Every identity ever added, in id order."""
        return [self._identities[i] for i in sorted(self._identities)]
