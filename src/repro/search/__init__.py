"""A simulated web search engine.

Section 6.2.2 notes that the paper's crawler could not locate some
registration pages ("not clearly accessible from the home page", text
embedded in images) and suggests that "it may be possible to rely on
search engines to help locate the registration pages."  This package
implements that extension: a spider that reads site sitemaps, indexes
page text, and answers registration-page queries the crawler can use
as a fallback.
"""

from repro.search.engine import SearchEngine, SearchHit

__all__ = ["SearchEngine", "SearchHit"]
