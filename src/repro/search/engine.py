"""Sitemap-driven search engine over the simulated web."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.html.parser import parse_html
from repro.net.transport import Transport, TransportError

_LOC_RE = re.compile(r"<loc>([^<]+)</loc>")

#: Query vocabulary for "where do I sign up on this site?", spanning
#: the languages the extended crawler may enable.
REGISTRATION_KEYWORDS = (
    "sign up", "register", "registration", "create account", "join",
    "registrieren", "konto", "inscription", "inscrire", "regístrate",
    "registrarse", "cuenta",
)

#: Words indicating a page carries a credentials form.
FORM_SIGNALS = ("password", "passwort", "contraseña", "mot de passe", "senha")


@dataclass(frozen=True)
class IndexedPage:
    """One page in the index."""

    host: str
    url: str
    title: str
    text: str
    has_password_field: bool


@dataclass(frozen=True)
class SearchHit:
    """A ranked query result."""

    url: str
    score: float
    title: str


class SearchEngine:
    """Spiders sitemaps and serves keyword queries.

    The engine crawls independently of the measurement crawler — like a
    real search engine, it has already seen pages (via sitemaps) that a
    homepage-only crawl misses.
    """

    def __init__(self, transport: Transport, max_pages_per_site: int = 8):
        if max_pages_per_site < 1:
            raise ValueError("max_pages_per_site must be positive")
        self._transport = transport
        self._max_pages = max_pages_per_site
        self._index: dict[str, list[IndexedPage]] = {}
        self.pages_indexed = 0

    # -- spidering ------------------------------------------------------------

    def index_site(self, host: str) -> int:
        """Spider one host via its sitemap; returns pages indexed.

        Idempotent: a host already in the index is not re-spidered.
        """
        key = host.lower()
        if key in self._index:
            return len(self._index[key])
        pages: list[IndexedPage] = []
        self._index[key] = pages
        urls = self._sitemap_urls(key)
        for url in urls[: self._max_pages]:
            page = self._fetch(url)
            if page is not None:
                pages.append(page)
                self.pages_indexed += 1
        return len(pages)

    def _sitemap_urls(self, host: str) -> list[str]:
        for scheme in ("http", "https"):
            try:
                response = self._transport.get(f"{scheme}://{host}/sitemap.xml")
            except TransportError:
                continue
            if response.ok:
                return _LOC_RE.findall(response.body)
        return []

    def _fetch(self, url: str) -> IndexedPage | None:
        try:
            response = self._transport.get(url)
        except TransportError:
            return None
        if not response.ok:
            return None
        dom = parse_html(response.body)
        title_node = dom.find_first("title")
        has_password = any(
            node.get("type") == "password" for node in dom.find_all("input")
        )
        host = url.split("://", 1)[-1].split("/", 1)[0].lower()
        return IndexedPage(
            host=host,
            url=url,
            title=title_node.text_content() if title_node else "",
            text=dom.text_content(),
            has_password_field=has_password,
        )

    # -- querying --------------------------------------------------------------

    def query(self, keywords: tuple[str, ...], site: str | None = None) -> list[SearchHit]:
        """Keyword search, optionally scoped to one host (``site:``)."""
        hits: list[SearchHit] = []
        hosts = [site.lower()] if site else list(self._index)
        for host in hosts:
            for page in self._index.get(host, []):
                haystack = f"{page.title} {page.text}".lower()
                score = sum(2.0 for k in keywords if k in haystack)
                if any(signal in haystack for signal in FORM_SIGNALS):
                    score += 3.0
                if page.has_password_field:
                    score += 5.0
                if score > 0:
                    hits.append(SearchHit(url=page.url, score=score, title=page.title))
        hits.sort(key=lambda h: (-h.score, h.url))
        return hits

    def find_registration_page(self, host: str) -> str | None:
        """Best guess at a host's registration page URL, or None.

        Spiders the host on first use, then ranks its pages for
        registration keywords and credential forms, skipping pure
        login pages.
        """
        self.index_site(host)
        for hit in self.query(REGISTRATION_KEYWORDS, site=host):
            path = hit.url.split("://", 1)[-1].partition("/")[2]
            if path.startswith("login"):
                continue
            if hit.score >= 5.0 and path not in ("", "about", "contact"):
                return hit.url
        return None
