"""HTML/DOM substrate.

The paper's crawler drives PhantomJS (a headless WebKit browser) over
real pages.  This package supplies the offline equivalent: simulated
sites *render genuine HTML text*, and the crawler parses it back into a
DOM and applies its heuristics to elements, attributes and visible text
— the same shape of computation, minus JavaScript execution (which the
paper's crawler also could not meaningfully rely on for multi-stage
forms; see Section 7.2).

- :mod:`repro.html.dom` — element tree with query helpers.
- :mod:`repro.html.parser` — tolerant tokenizer/parser for HTML text.
- :mod:`repro.html.forms` — form-field extraction and serialization.
- :mod:`repro.html.builder` — programmatic page construction.
- :mod:`repro.html.browser` — a minimal headless browser over the
  simulated transport.
"""

from repro.html.dom import Element, TextNode, Node
from repro.html.parser import parse_html
from repro.html.builder import el, text, page_skeleton
from repro.html.forms import FormField, FormModel, extract_form_model
from repro.html.browser import Browser, Page, BrowserError

__all__ = [
    "Element",
    "TextNode",
    "Node",
    "parse_html",
    "el",
    "text",
    "page_skeleton",
    "FormField",
    "FormModel",
    "extract_form_model",
    "Browser",
    "Page",
    "BrowserError",
]
