"""Form-field extraction and serialization.

The crawler's field-identification heuristics need, for every control in
a form, the set of texts that describe it: name, id, placeholder, the
text of any ``<label for=...>`` or wrapping label, and nearby text.
:func:`extract_form_model` gathers all of that into a
:class:`FormModel`, and :meth:`FormModel.serialize` turns filled values
into the POST body following HTML form-submission semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.html.dom import Element, TextNode

#: Input types that carry user-entered text.
TEXT_LIKE_TYPES = frozenset(
    {"text", "email", "password", "tel", "number", "date", "url", "search", ""}
)


@dataclass
class FormField:
    """One form control plus the descriptive text around it."""

    element: Element
    control: str  # input | select | textarea
    input_type: str  # for <input>: lowercased type attribute
    name: str
    field_id: str
    placeholder: str
    label_text: str
    nearby_text: str
    required: bool
    maxlength: int | None
    options: list[str] = field(default_factory=list)  # for <select>
    default_value: str = ""

    def descriptor_texts(self) -> list[str]:
        """All texts a heuristic may match against, most specific first."""
        texts = [self.name, self.field_id, self.placeholder, self.label_text, self.nearby_text]
        return [t for t in texts if t]

    @property
    def is_text_like(self) -> bool:
        """Whether the control accepts free text."""
        if self.control == "textarea":
            return True
        return self.control == "input" and self.input_type in TEXT_LIKE_TYPES

    @property
    def is_checkbox(self) -> bool:
        """Whether the control is a checkbox."""
        return self.control == "input" and self.input_type == "checkbox"

    @property
    def is_hidden(self) -> bool:
        """Whether the control is a hidden input."""
        return self.control == "input" and self.input_type == "hidden"

    @property
    def has_challenge_token(self) -> bool:
        """Whether the control carries a captcha challenge token."""
        return bool(self.element.get("data-challenge"))

    @property
    def challenge_token(self) -> str:
        """The captcha challenge token, if any."""
        return self.element.get("data-challenge")


@dataclass
class FormModel:
    """A form ready to be filled and submitted."""

    element: Element
    action: str
    method: str
    fields: list[FormField]
    submit_controls: list[Element]
    form_text: str

    def visible_fields(self) -> list[FormField]:
        """Fields a user would interact with (hidden/submit excluded)."""
        return [f for f in self.fields if not f.is_hidden]

    def field_by_name(self, name: str) -> FormField | None:
        """First field with the given ``name`` attribute."""
        for form_field in self.fields:
            if form_field.name == name:
                return form_field
        return None

    def serialize(self, values: dict[str, str]) -> dict[str, str]:
        """Build the submission payload.

        ``values`` maps field names to filled values.  Hidden inputs and
        select defaults are carried through automatically; checkboxes
        are included only when a value was supplied (i.e. checked).
        """
        payload: dict[str, str] = {}
        for form_field in self.fields:
            if not form_field.name:
                continue
            if form_field.name in values:
                payload[form_field.name] = values[form_field.name]
            elif form_field.is_hidden:
                payload[form_field.name] = form_field.default_value
            elif form_field.control == "select" and form_field.options:
                payload[form_field.name] = form_field.default_value or form_field.options[0]
            elif form_field.is_checkbox:
                continue  # unchecked boxes are omitted from submissions
            elif form_field.default_value:
                payload[form_field.name] = form_field.default_value
        return payload


def _label_index(root: Element) -> dict[str, str]:
    """Map control id -> text of any ``<label for=id>``."""
    labels: dict[str, str] = {}
    for label in root.find_all("label"):
        target = label.get("for")
        if target:
            labels[target] = label.text_content()
    return labels


def _wrapping_label_text(control: Element) -> str:
    wrapper = control.closest("label")
    return wrapper.text_content() if wrapper else ""


def _preceding_sibling_text(control: Element) -> str:
    """Text immediately before the control inside its parent."""
    parent = control.parent
    if parent is None:
        return ""
    texts: list[str] = []
    for child in parent.children:
        if child is control:
            break
        if isinstance(child, TextNode):
            texts.append(child.text)
        elif isinstance(child, Element) and child.tag in ("span", "b", "strong", "p", "div", "td", "th"):
            texts.append(child.text_content())
    combined = " ".join(" ".join(texts).split())
    # Only the tail end is relevant to this control.
    return combined[-80:]


def _select_options(control: Element) -> tuple[list[str], str]:
    options: list[str] = []
    default = ""
    for option in control.find_all("option"):
        # An explicit value attribute wins even when empty (the
        # "placeholder option" idiom); only a missing attribute falls
        # back to the option's text.
        value = option.get("value") if option.has("value") else option.text_content()
        options.append(value)
        if option.has("selected") and not default:
            default = value
    return options, default


def extract_form_model(root: Element, form: Element, base_url: str = "") -> FormModel:
    """Build a :class:`FormModel` for ``form`` within document ``root``."""
    labels = _label_index(root)
    fields: list[FormField] = []
    submit_controls: list[Element] = []
    for control in form.find_all("input", "select", "textarea", "button"):
        input_type = control.get("type").lower()
        if control.tag == "button" or input_type in ("submit", "image"):
            submit_controls.append(control)
            continue
        if input_type in ("button", "reset"):
            continue
        options: list[str] = []
        default_value = control.get("value")
        if control.tag == "select":
            options, default_value = _select_options(control)
        maxlength_raw = control.get("maxlength")
        maxlength = int(maxlength_raw) if maxlength_raw.isdigit() else None
        field_id = control.get("id")
        fields.append(
            FormField(
                element=control,
                control=control.tag,
                input_type=input_type if control.tag == "input" else "",
                name=control.get("name"),
                field_id=field_id,
                placeholder=control.get("placeholder"),
                label_text=labels.get(field_id, "") or _wrapping_label_text(control),
                nearby_text=_preceding_sibling_text(control),
                required=control.has("required"),
                maxlength=maxlength,
                options=options,
                default_value=default_value,
            )
        )
    return FormModel(
        element=form,
        action=form.get("action") or base_url,
        method=form.get("method", "get").lower() or "get",
        fields=fields,
        submit_controls=submit_controls,
        form_text=form.text_content(),
    )
