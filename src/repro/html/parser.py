"""A tolerant HTML tokenizer and tree builder.

Not a full HTML5 parser — it covers the constructs that real-world
registration pages (and our simulated ones) use: nested elements,
quoted/unquoted/bare attributes, void elements, comments, doctype,
raw-text ``<script>``/``<style>`` bodies and character entities.
Unclosed tags are recovered by implicit closing, as browsers do.
"""

from __future__ import annotations

import html as _htmllib
import re

from repro.html.dom import VOID_ELEMENTS, Element, TextNode

_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:-]*")
_ATTR_RE = re.compile(
    r"""\s*([^\s=/>]+)(?:\s*=\s*("[^"]*"|'[^']*'|[^\s>]*))?"""
)
_RAW_TEXT_TAGS = frozenset({"script", "style", "textarea", "title"})


class HtmlParseError(ValueError):
    """Raised for text so malformed no recovery is possible."""


def parse_html(text: str) -> Element:
    """Parse HTML text into a DOM tree rooted at an ``html`` element.

    A synthetic ``<html>`` root is provided when the input lacks one,
    so queries always run against a single rooted tree.
    """
    parser = _Parser(text)
    parser.run()
    return parser.root


class _Parser:
    __slots__ = ("text", "pos", "root", "stack", "_lower")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.root = Element("html")
        self.stack: list[Element] = [self.root]
        # Lowercased source, computed at most once.  Lowering inside
        # _consume_raw_text made every <script>/<style> cost O(n),
        # turning script-heavy pages quadratic.
        self._lower: str | None = None

    @property
    def current(self) -> Element:
        return self.stack[-1]

    def run(self) -> None:
        n = len(self.text)
        while self.pos < n:
            lt = self.text.find("<", self.pos)
            if lt == -1:
                self._emit_text(self.text[self.pos :])
                break
            if lt > self.pos:
                self._emit_text(self.text[self.pos : lt])
            self.pos = lt
            self._consume_markup()
        # Implicitly close everything that remains open.
        self.stack = [self.root]

    def _emit_text(self, raw: str) -> None:
        if raw:
            self.current.append(TextNode(_htmllib.unescape(raw)))

    def _consume_markup(self) -> None:
        text = self.text
        pos = self.pos
        if text.startswith("<!--", pos):
            end = text.find("-->", pos + 4)
            self.pos = len(text) if end == -1 else end + 3
            return
        if text.startswith("<!", pos) or text.startswith("<?", pos):
            end = text.find(">", pos)
            self.pos = len(text) if end == -1 else end + 1
            return
        if text.startswith("</", pos):
            self._consume_close_tag()
            return
        self._consume_open_tag()

    def _consume_close_tag(self) -> None:
        match = _TAG_NAME_RE.match(self.text, self.pos + 2)
        end = self.text.find(">", self.pos)
        self.pos = len(self.text) if end == -1 else end + 1
        if match is None:
            return
        tag = match.group(0).lower()
        # Close up to the nearest matching open element, if any.
        for depth in range(len(self.stack) - 1, 0, -1):
            if self.stack[depth].tag == tag:
                del self.stack[depth:]
                return
        # No matching open tag: ignore, as browsers do.

    def _consume_open_tag(self) -> None:
        match = _TAG_NAME_RE.match(self.text, self.pos + 1)
        if match is None:
            # A bare '<' in text content.
            self._emit_text("<")
            self.pos += 1
            return
        tag = match.group(0).lower()
        cursor = match.end()
        attrs: dict[str, str] = {}
        self_closing = False
        n = len(self.text)
        while cursor < n:
            if self.text.startswith("/>", cursor):
                self_closing = True
                cursor += 2
                break
            if self.text[cursor] == ">":
                cursor += 1
                break
            attr_match = _ATTR_RE.match(self.text, cursor)
            if attr_match is None or attr_match.end() == cursor:
                cursor += 1
                continue
            name = attr_match.group(1).lower()
            raw_value = attr_match.group(2)
            if raw_value is None:
                value = ""
            elif raw_value[:1] in ("'", '"'):
                value = raw_value[1:-1]
            else:
                value = raw_value
            if name not in ("/", ">"):
                attrs[name] = _htmllib.unescape(value)
            cursor = attr_match.end()
        self.pos = cursor

        if tag == "html":
            # Merge attributes into the synthetic root instead of nesting.
            self.root.attrs.update(attrs)
            return

        element = Element(tag, attrs)
        self.current.append(element)
        if self_closing or tag in VOID_ELEMENTS:
            return
        if tag in _RAW_TEXT_TAGS:
            self._consume_raw_text(element, tag)
            return
        self.stack.append(element)

    def _consume_raw_text(self, element: Element, tag: str) -> None:
        close = f"</{tag}"
        if self._lower is None:
            self._lower = self.text.lower()
        end = self._lower.find(close, self.pos)
        if end == -1:
            raw = self.text[self.pos :]
            self.pos = len(self.text)
        else:
            raw = self.text[self.pos : end]
            gt = self.text.find(">", end)
            self.pos = len(self.text) if gt == -1 else gt + 1
        if raw:
            content = raw if tag in ("script", "style") else _htmllib.unescape(raw)
            element.append(TextNode(content))
