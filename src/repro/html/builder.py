"""Programmatic HTML construction used by the simulated websites."""

from __future__ import annotations

from repro.html.dom import Element, Node, TextNode


def el(tag: str, attrs: dict[str, str] | None = None, *children: "Node | str") -> Element:
    """Create an element with attributes and children in one call."""
    element = Element(tag, attrs)
    for child in children:
        element.append(child)
    return element


def text(content: str) -> TextNode:
    """Create a text node."""
    return TextNode(content)


def page_skeleton(title: str, lang: str = "en") -> tuple[Element, Element]:
    """Build an ``html`` root with head/title and an empty body.

    Returns ``(root, body)`` so callers can populate the body directly.
    """
    root = Element("html", {"lang": lang})
    head = el("head", None, el("title", None, title))
    head.append(el("meta", {"charset": "utf-8"}))
    body = Element("body")
    root.append(head)
    root.append(body)
    return root, body


def render_document(root: Element) -> str:
    """Serialize a full document with doctype."""
    return "<!DOCTYPE html>\n" + root.to_html()
