"""A small DOM: element tree with the queries the crawler needs."""

from __future__ import annotations

import html as _htmllib
from typing import Iterator

#: Elements that never have children or a closing tag.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)


class Node:
    """Base class for DOM nodes.

    ``__slots__`` must be declared here too: a slotted subclass of a
    dict-bearing base still gets a per-instance ``__dict__``, which is
    exactly the memory overhead slots exist to avoid.
    """

    __slots__ = ("parent",)

    parent: "Element | None"

    def __init__(self) -> None:
        self.parent = None

    def to_html(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def clone(self) -> "Node":  # pragma: no cover - overridden
        raise NotImplementedError


class TextNode(Node):
    """A run of character data."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text

    def to_html(self) -> str:
        """Serialize with entity escaping."""
        return _htmllib.escape(self.text, quote=False)

    def clone(self) -> "TextNode":
        """A parentless copy of this text node."""
        return TextNode(self.text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextNode({self.text!r})"


class Element(Node):
    """An HTML element with attributes and children."""

    __slots__ = ("tag", "attrs", "children")

    def __init__(self, tag: str, attrs: dict[str, str] | None = None):
        super().__init__()
        self.tag = tag.lower()
        self.attrs: dict[str, str] = {
            name.lower(): value for name, value in (attrs or {}).items()
        }
        self.children: list[Node] = []

    # -- tree construction -------------------------------------------------

    def append(self, node: "Node | str") -> Node:
        """Append a child node (strings become text nodes)."""
        if isinstance(node, str):
            node = TextNode(node)
        node.parent = self
        self.children.append(node)
        return node

    def extend(self, nodes: list["Node | str"]) -> None:
        """Append several children."""
        for node in nodes:
            self.append(node)

    # -- attribute access --------------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        """Attribute value (lowercased name), or ``default``."""
        return self.attrs.get(name.lower(), default)

    def set(self, name: str, value: str) -> None:
        """Set an attribute."""
        self.attrs[name.lower()] = value

    def has(self, name: str) -> bool:
        """Whether the attribute is present (possibly empty)."""
        return name.lower() in self.attrs

    @property
    def id(self) -> str:
        """The ``id`` attribute (empty string when absent)."""
        return self.get("id")

    @property
    def classes(self) -> list[str]:
        """The ``class`` attribute split on whitespace."""
        return self.get("class").split()

    # -- queries -----------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over this element's subtree."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, *tags: str) -> list["Element"]:
        """All descendant elements (including self) with one of ``tags``."""
        wanted = {t.lower() for t in tags}
        return [node for node in self.iter() if node.tag in wanted]

    def find_first(self, *tags: str) -> "Element | None":
        """First matching descendant in document order, or None."""
        wanted = {t.lower() for t in tags}
        for node in self.iter():
            if node.tag in wanted:
                return node
        return None

    def find_by_id(self, element_id: str) -> "Element | None":
        """Descendant with the given ``id``, or None."""
        for node in self.iter():
            if node.get("id") == element_id:
                return node
        return None

    def text_content(self) -> str:
        """Concatenated text of the subtree, whitespace-normalized."""
        parts: list[str] = []
        self._collect_text(parts)
        return " ".join(" ".join(parts).split())

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            elif isinstance(child, Element):
                if child.tag in ("script", "style"):
                    continue
                child._collect_text(parts)

    def ancestors(self) -> Iterator["Element"]:
        """This element's ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def closest(self, tag: str) -> "Element | None":
        """Nearest ancestor (or self) with ``tag``."""
        wanted = tag.lower()
        if self.tag == wanted:
            return self
        for ancestor in self.ancestors():
            if ancestor.tag == wanted:
                return ancestor
        return None

    # -- copying -----------------------------------------------------------

    def clone(self) -> "Element":
        """A structural deep copy of this subtree (parentless root).

        Much cheaper than re-parsing serialized HTML — no tokenizing,
        attribute regexes or entity decoding — which is what makes the
        parsed-DOM cache in :mod:`repro.html.browser` pay off while
        still handing every caller a tree it may freely mutate.
        """
        copy = Element.__new__(Element)
        copy.parent = None
        copy.tag = self.tag
        copy.attrs = dict(self.attrs)
        copy.children = children = []
        for child in self.children:
            child_copy = child.clone()
            child_copy.parent = copy
            children.append(child_copy)
        return copy

    # -- serialization -----------------------------------------------------

    def to_html(self) -> str:
        """Serialize the subtree back to HTML text."""
        attr_text = "".join(
            f' {name}="{_htmllib.escape(value, quote=True)}"'
            for name, value in self.attrs.items()
        )
        if self.tag in VOID_ELEMENTS:
            return f"<{self.tag}{attr_text}>"
        inner = "".join(child.to_html() for child in self.children)
        return f"<{self.tag}{attr_text}>{inner}</{self.tag}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.id}" if self.id else ""
        return f"<Element {self.tag}{ident} children={len(self.children)}>"
