"""A minimal headless browser over the simulated transport.

Stands in for PhantomJS (Section 4.3.1): it loads URLs, parses the
returned HTML into a DOM, resolves relative links, and submits forms
with proper serialization.  The crawler drives it exactly as the paper's
crawler drove PhantomJS — load, inspect DOM, click, fill, submit.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import urljoin

from repro.html.dom import Element
from repro.html.forms import FormModel, extract_form_model
from repro.html.parser import parse_html
from repro.net.ipaddr import IPv4Address
from repro.net.transport import HttpResponse, Transport, TransportError
from repro.perf import caching as _perf

#: Parsed-DOM cache keyed on the exact response body.  Sites serve the
#: same bytes again and again (every /about hit, every crawl batch
#: revisiting a homepage), so the tokenizer runs once per distinct
#: body.  The cached tree is the pristine master: every consumer —
#: including the first — receives a fresh :meth:`Element.clone`, so
#: mutating one page can never leak into another.
_DOM_CACHE = _perf.LruCache(maxsize=512, name="parsed-dom")


def _parse_body(body: str) -> Element:
    if not _perf.enabled():
        return parse_html(body)
    master = _DOM_CACHE.get(body)
    if master is None:
        master = parse_html(body)
        _DOM_CACHE.put(body, master)
    return master.clone()


class BrowserError(Exception):
    """A page could not be loaded or interacted with."""


@dataclass
class Page:
    """A loaded page: its DOM plus the URL it ended up at."""

    url: str
    status: int
    dom: Element

    @property
    def ok(self) -> bool:
        """Whether the load returned a 2xx status."""
        return 200 <= self.status < 300

    def links(self) -> list[tuple[str, str]]:
        """All anchors as ``(absolute_href, anchor_text)`` pairs."""
        found = []
        for anchor in self.dom.find_all("a"):
            href = anchor.get("href")
            if not href or href.startswith(("#", "javascript:", "mailto:")):
                continue
            found.append((urljoin(self.url, href), anchor.text_content()))
        return found

    def forms(self) -> list[FormModel]:
        """All forms on the page as filled-out-able models."""
        return [
            extract_form_model(self.dom, form, base_url=self.url)
            for form in self.dom.find_all("form")
        ]

    def visible_text(self) -> str:
        """The page's whitespace-normalized text content."""
        return self.dom.text_content()

    @property
    def title(self) -> str:
        """The document title (empty when absent)."""
        title = self.dom.find_first("title")
        return title.text_content() if title else ""


class Browser:
    """Loads pages and submits forms through a :class:`Transport`."""

    def __init__(self, transport: Transport, client_ip: IPv4Address | None = None):
        self._transport = transport
        self.client_ip = client_ip
        self.current_page: Page | None = None

    @property
    def transport(self) -> Transport:
        """The underlying transport."""
        return self._transport

    def load(self, url: str) -> Page:
        """GET a URL, parse it, and make it the current page."""
        try:
            response = self._transport.get(url, client_ip=self.client_ip)
        except TransportError as exc:
            raise BrowserError(f"failed to load {url!r}: {exc}") from exc
        return self._absorb(response, url)

    def submit_form(self, form: FormModel, values: dict[str, str]) -> Page:
        """Serialize and submit a form, returning the landing page."""
        if self.current_page is None:
            raise BrowserError("no current page to submit from")
        payload = form.serialize(values)
        action = urljoin(self.current_page.url, form.action or self.current_page.url)
        try:
            if form.method == "post":
                response = self._transport.post(action, payload, client_ip=self.client_ip)
            else:
                query = "&".join(f"{k}={v}" for k, v in payload.items())
                joiner = "&" if "?" in action else "?"
                target = f"{action}{joiner}{query}" if query else action
                response = self._transport.get(target, client_ip=self.client_ip)
        except TransportError as exc:
            raise BrowserError(f"failed to submit to {action!r}: {exc}") from exc
        return self._absorb(response, action)

    def _absorb(self, response: HttpResponse, requested_url: str) -> Page:
        final_url = response.final_url or requested_url
        dom = _parse_body(response.body or "")
        page = Page(url=final_url, status=response.status, dom=dom)
        self.current_page = page
        return page
