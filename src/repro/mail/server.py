"""The Tripwire mail server (Section 4.3.3).

Retains a copy of every message received, classifies each incoming
message, and — when a message is associated with a recently-registered
account and contains a validation link — loads the verification page
and saves it for debugging.  The link-clicking step can fail (the paper
missed one breach because verification was never completed, §6.2.2);
the failure rate is configurable.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.mail.messages import (
    EmailMessage,
    MessageKind,
    looks_like_registration_related,
    looks_like_verification,
)
from repro.net.transport import Transport, TransportError
from repro.util.timeutil import DAY, SimInstant


class VerificationOutcome(enum.Enum):
    """Result of acting on a detected verification message."""

    CLICKED = "clicked"
    FETCH_FAILED = "fetch_failed"
    NO_LINK = "no_link"
    NOT_EXPECTED = "not_expected"  # no recent registration for the account
    SKIPPED = "skipped"  # random click-failure (missed-verification mode)


@dataclass(frozen=True)
class StoredMessage:
    """A message at rest, with its classification."""

    message: EmailMessage
    classified_kind: MessageKind
    verification: VerificationOutcome | None


class TripwireMailServer:
    """Store-and-process endpoint for all forwarded honey-account mail."""

    #: A verification message only counts toward a registration made in
    #: the preceding window; later mail is just "email received".
    EXPECTATION_WINDOW = 14 * DAY

    def __init__(
        self,
        transport: Transport,
        rng: random.Random,
        verification_click_failure_rate: float = 0.01,
    ):
        if not 0.0 <= verification_click_failure_rate <= 1.0:
            raise ValueError("failure rate must be a probability")
        self._transport = transport
        self._rng = rng
        self._click_failure_rate = verification_click_failure_rate
        self._stored: list[StoredMessage] = []
        self._by_local: dict[str, list[StoredMessage]] = {}
        self._expected: dict[str, tuple[str, SimInstant]] = {}  # local -> (site, time)
        self._saved_pages: list[tuple[str, str]] = []  # (url, body) for debugging

    # -- registration expectations -------------------------------------------

    def expect_registration(self, email_local: str, site_host: str, time: SimInstant) -> None:
        """Note that an account was just used to register at a site."""
        self._expected[email_local.lower()] = (site_host.lower(), time)

    # -- delivery --------------------------------------------------------------

    def receive(self, message: EmailMessage) -> StoredMessage:
        """Store, classify and (for verifications) act on one message."""
        local = message.recipient.partition("@")[0].lower()
        kind = self._classify(message)
        verification: VerificationOutcome | None = None
        if kind is MessageKind.VERIFICATION:
            verification = self._handle_verification(local, message)
        stored = StoredMessage(message=message, classified_kind=kind, verification=verification)
        self._stored.append(stored)
        self._by_local.setdefault(local, []).append(stored)
        return stored

    def _classify(self, message: EmailMessage) -> MessageKind:
        if looks_like_verification(message):
            return MessageKind.VERIFICATION
        if message.kind in (MessageKind.SPAM, MessageKind.NEWSLETTER):
            return message.kind
        if looks_like_registration_related(message):
            return MessageKind.WELCOME
        return message.kind

    def _handle_verification(self, local: str, message: EmailMessage) -> VerificationOutcome:
        expectation = self._expected.get(local)
        if expectation is None or message.time - expectation[1] > self.EXPECTATION_WINDOW:
            return VerificationOutcome.NOT_EXPECTED
        urls = message.urls()
        if not urls:
            return VerificationOutcome.NO_LINK
        if self._rng.random() < self._click_failure_rate:
            return VerificationOutcome.SKIPPED
        try:
            response = self._transport.get(urls[0])
        except TransportError:
            return VerificationOutcome.FETCH_FAILED
        self._saved_pages.append((urls[0], response.body))
        return VerificationOutcome.CLICKED

    # -- queries ----------------------------------------------------------------

    def messages_for(self, email_local: str) -> list[StoredMessage]:
        """Every stored message for one account, oldest first."""
        return list(self._by_local.get(email_local.lower(), []))

    def received_any(self, email_local: str, since: SimInstant = 0) -> bool:
        """Whether the account received any mail at or after ``since``."""
        return any(s.message.time >= since for s in self.messages_for(email_local))

    def verification_state(self, email_local: str, since: SimInstant = 0) -> VerificationOutcome | None:
        """Best verification outcome for an account since ``since``.

        ``CLICKED`` dominates; otherwise the first non-None outcome.
        """
        outcomes = [
            s.verification
            for s in self.messages_for(email_local)
            if s.verification is not None and s.message.time >= since
        ]
        if not outcomes:
            return None
        if VerificationOutcome.CLICKED in outcomes:
            return VerificationOutcome.CLICKED
        return outcomes[0]

    @property
    def stored_count(self) -> int:
        """Total messages retained."""
        return len(self._stored)

    @property
    def saved_pages(self) -> list[tuple[str, str]]:
        """Fetched verification pages, for debugging parity with the paper."""
        return list(self._saved_pages)
