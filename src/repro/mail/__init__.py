"""Email message types, forwarding hop and the Tripwire mail server.

The partner provider forwards every message received by a honey account
to addresses at domains under the researchers' control, hosted by a
third-party mail provider, which forwards again to the Tripwire mail
server (Section 4.2).  The mail server stores everything, recognizes
account-verification messages and fetches their confirmation links
(Section 4.3.3).
"""

from repro.mail.messages import EmailMessage, MessageKind
from repro.mail.forwarding import ForwardingHop
from repro.mail.server import TripwireMailServer, VerificationOutcome

__all__ = [
    "EmailMessage",
    "MessageKind",
    "ForwardingHop",
    "TripwireMailServer",
    "VerificationOutcome",
]
