"""The third-party forwarding hop (Section 4.2).

Forwarding addresses visible in the provider's web UI live at a small
number of unremarkable domains under the researchers' control, hosted
by a third-party mail provider; that provider forwards on to the actual
Tripwire mail server.  The hop hides the final destination from anyone
inspecting a compromised account's settings.
"""

from __future__ import annotations

from typing import Callable

from repro.mail.messages import EmailMessage


class ForwardingHop:
    """Relays messages addressed to the cover domains."""

    def __init__(self, cover_domains: list[str], deliver: Callable[[EmailMessage], None]):
        if not cover_domains:
            raise ValueError("at least one cover domain is required")
        self._domains = {d.lower() for d in cover_domains}
        self._deliver = deliver
        self._relayed = 0
        self._rejected = 0

    @property
    def cover_domains(self) -> set[str]:
        """Domains this hop accepts mail for."""
        return set(self._domains)

    def address_for(self, local_part: str, index: int = 0) -> str:
        """The forwarding address advertised for an account.

        Accounts are spread across the cover domains deterministically.
        """
        domains = sorted(self._domains)
        domain = domains[index % len(domains)]
        return f"{local_part}@{domain}"

    def accepts(self, address: str) -> bool:
        """Whether an address belongs to a cover domain."""
        _local, _, domain = address.partition("@")
        return domain.lower() in self._domains

    def __call__(self, message: EmailMessage) -> None:
        """Relay a message; silently drops mail for foreign domains."""
        if not self.accepts(message.recipient):
            self._rejected += 1
            return
        self._relayed += 1
        self._deliver(message)

    @property
    def relayed_count(self) -> int:
        """Messages successfully relayed."""
        return self._relayed

    @property
    def rejected_count(self) -> int:
        """Messages dropped for not matching a cover domain."""
        return self._rejected
