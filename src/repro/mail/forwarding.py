"""The third-party forwarding hop (Section 4.2).

Forwarding addresses visible in the provider's web UI live at a small
number of unremarkable domains under the researchers' control, hosted
by a third-party mail provider; that provider forwards on to the actual
Tripwire mail server.  The hop hides the final destination from anyone
inspecting a compromised account's settings.

The downstream relay is allowed to hiccup: a delivery callable may
raise :class:`TransientDeliveryError`, and a hop configured with a
:class:`~repro.faults.retry.RetryPolicy` re-delivers with capped
exponential backoff (advancing the simulation clock between tries)
before counting the message as lost.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.mail.messages import EmailMessage
from repro.obs import NO_OP

if TYPE_CHECKING:  # imported only for signatures; no runtime cycle
    from repro.faults.report import FaultReport
    from repro.faults.retry import RetryPolicy
    from repro.sim.protocols import ClockLike


class TransientDeliveryError(Exception):
    """The relay failed this delivery but may succeed on a retry."""


class ForwardingHop:
    """Relays messages addressed to the cover domains."""

    def __init__(
        self,
        cover_domains: list[str],
        deliver: Callable[[EmailMessage], None],
        retry: "RetryPolicy | None" = None,
        clock: "ClockLike | None" = None,
        rng: random.Random | None = None,
        fault_report: "FaultReport | None" = None,
        obs=NO_OP,
    ):
        if not cover_domains:
            raise ValueError("at least one cover domain is required")
        if retry is not None and rng is None:
            raise ValueError("a retry policy needs an rng for backoff jitter")
        self._domains = {d.lower() for d in cover_domains}
        self._deliver = deliver
        self._retry = retry
        self._clock = clock
        self._rng = rng
        self._fault_report = fault_report
        self._obs = obs
        self._relayed = 0
        self._rejected = 0
        self._lost = 0

    @property
    def cover_domains(self) -> set[str]:
        """Domains this hop accepts mail for."""
        return set(self._domains)

    def address_for(self, local_part: str, index: int = 0) -> str:
        """The forwarding address advertised for an account.

        Accounts are spread across the cover domains deterministically.
        """
        domains = sorted(self._domains)
        domain = domains[index % len(domains)]
        return f"{local_part}@{domain}"

    def accepts(self, address: str) -> bool:
        """Whether an address belongs to a cover domain."""
        _local, _, domain = address.partition("@")
        return domain.lower() in self._domains

    def __call__(self, message: EmailMessage) -> None:
        """Relay a message; silently drops mail for foreign domains."""
        if not self.accepts(message.recipient):
            self._rejected += 1
            self._obs.count("mail.rejected")
            return
        with self._obs.span("mail.relay"):
            delivered = self._relay_with_retry(message)
        if delivered:
            self._relayed += 1
            self._obs.count("mail.relayed")
        else:
            self._lost += 1
            self._obs.count("mail.lost")
            if self._fault_report is not None:
                self._fault_report.mail_undelivered += 1
                self._obs.count("fault.mail_undelivered")

    def _relay_with_retry(self, message: EmailMessage) -> bool:
        """Deliver, retrying transient relay failures per the policy."""
        floor = 0
        retries_allowed = self._retry.retries if self._retry is not None else 0
        for attempt in range(retries_allowed + 1):
            try:
                self._deliver(message)
                return True
            except TransientDeliveryError:
                if attempt >= retries_allowed:
                    return False
                assert self._retry is not None and self._rng is not None
                floor = max(
                    floor,
                    self._retry.delay_for(attempt, self._rng, metrics=self._obs.metrics),
                )
                if self._clock is not None:
                    self._clock.advance(floor)
                if self._fault_report is not None:
                    self._fault_report.mail_retries += 1
                self._obs.count("retry.mail_retries")
        return False  # pragma: no cover - loop always returns

    @property
    def relayed_count(self) -> int:
        """Messages successfully relayed."""
        return self._relayed

    @property
    def rejected_count(self) -> int:
        """Messages dropped for not matching a cover domain."""
        return self._rejected

    @property
    def lost_count(self) -> int:
        """Messages lost after the relay retry budget ran out."""
        return self._lost
