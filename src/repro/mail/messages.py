"""Email message modeling."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.util.timeutil import SimInstant

_URL_RE = re.compile(r"https?://[^\s\"'<>]+")


class MessageKind(enum.Enum):
    """Coarse classification used by the mail-handling pipeline."""

    VERIFICATION = "verification"  # contains an account-confirmation link
    WELCOME = "welcome"  # registration-related but no link to click
    NEWSLETTER = "newsletter"
    SPAM = "spam"
    OTHER = "other"


@dataclass(frozen=True)
class EmailMessage:
    """An email in flight or at rest."""

    sender: str
    recipient: str
    subject: str
    body: str
    time: SimInstant
    kind: MessageKind = MessageKind.OTHER
    headers: dict[str, str] = field(default_factory=dict)

    def urls(self) -> list[str]:
        """All URLs found in the body."""
        return _URL_RE.findall(self.body)

    def with_recipient(self, recipient: str) -> "EmailMessage":
        """Copy of this message re-addressed (used by forwarding hops)."""
        return EmailMessage(
            sender=self.sender,
            recipient=recipient,
            subject=self.subject,
            body=self.body,
            time=self.time,
            kind=self.kind,
            headers=dict(self.headers),
        )


#: Subject/body cues that mark a message as an account-verification
#: message.  Mirrors the paper's mail-server heuristics (§4.3.3).
VERIFICATION_CUES = (
    "verify", "verification", "confirm", "confirmation", "activate",
    "activation", "validate",
)


def looks_like_verification(message: EmailMessage) -> bool:
    """Heuristic: does this message ask to confirm an account?"""
    haystack = f"{message.subject} {message.body}".lower()
    return any(cue in haystack for cue in VERIFICATION_CUES) and bool(message.urls())


def looks_like_registration_related(message: EmailMessage) -> bool:
    """Heuristic: is this message plausibly tied to a registration?"""
    haystack = f"{message.subject} {message.body}".lower()
    cues = ("welcome", "account", "registration", "sign up", "signed up", "thanks for joining")
    return any(cue in haystack for cue in cues)
