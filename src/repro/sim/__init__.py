"""Discrete-event simulation kernel: clock and event queue."""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue

__all__ = ["SimClock", "Event", "EventQueue"]
