"""The simulation clock.

A single monotonically non-decreasing clock drives the whole world:
crawler page loads advance it by their rate-limit delay, the event queue
jumps it to the next scheduled event, and every log entry (registration,
email, login) is stamped from it.
"""

from __future__ import annotations

from repro.util.timeutil import STUDY_START, SimInstant, format_instant


class ClockMovedBackward(RuntimeError):
    """An attempt was made to move simulated time backwards."""


class SimClock:
    """Monotonic simulated wall clock."""

    def __init__(self, start: SimInstant = STUDY_START):
        self._now: SimInstant = start
        #: Observability hook: called as ``on_violation(seconds, now)``
        #: before :class:`ClockMovedBackward` is raised, so the journal
        #: records *where* sim time broke even though the run dies.
        self.on_violation = None

    def now(self) -> SimInstant:
        """Current simulated instant."""
        return self._now

    def advance(self, seconds: int) -> SimInstant:
        """Move forward by a non-negative number of seconds."""
        if seconds < 0:
            if self.on_violation is not None:
                self.on_violation(seconds, self._now)
            raise ClockMovedBackward(f"advance({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, instant: SimInstant) -> SimInstant:
        """Jump forward to ``instant``; no-op if already past it."""
        if instant > self._now:
            self._now = instant
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({format_instant(self._now, with_time=True)})"
