"""Structural seams between the substrate and the apparatus.

The measurement apparatus (crawler, mail chain, identity machinery) is
wired against these :class:`~typing.Protocol` types rather than the
concrete substrate classes, so a world can be swapped wholesale: the
single shared world of :class:`repro.core.system.TripwireSystem`, or
one independent :class:`repro.core.substrate.WorldShard` per
rank-partition in a sharded campaign run.

Nothing here is instantiated; the concrete implementations live in
:mod:`repro.sim.clock`, :mod:`repro.sim.events`,
:mod:`repro.net.transport` and :mod:`repro.web.population`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.util.timeutil import SimInstant

if TYPE_CHECKING:  # concrete types referenced only in signatures
    from repro.net.transport import HttpResponse, RequestLogEntry
    from repro.web.site import Website
    from repro.web.spec import SiteSpec


@runtime_checkable
class ClockLike(Protocol):
    """Anything that can tell simulated time and advance it."""

    def now(self) -> SimInstant:  # pragma: no cover - protocol
        ...

    def advance(self, seconds: int) -> SimInstant:  # pragma: no cover - protocol
        ...

    def advance_to(self, instant: SimInstant) -> SimInstant:  # pragma: no cover - protocol
        ...


@runtime_checkable
class EventQueueLike(Protocol):
    """A time-ordered action queue bound to a clock."""

    def schedule(
        self, time: SimInstant, label: str, action: Callable[[], None]
    ) -> object:  # pragma: no cover - protocol
        ...

    def run_until(self, deadline: SimInstant) -> int:  # pragma: no cover - protocol
        ...

    def peek_time(self) -> SimInstant | None:  # pragma: no cover - protocol
        ...


@runtime_checkable
class TransportLike(Protocol):
    """HTTP routing over the simulated internet."""

    @property
    def clock(self) -> ClockLike:  # pragma: no cover - protocol
        ...

    def register_host(
        self, host: str, handler: Callable, https: bool = False
    ) -> None:  # pragma: no cover - protocol
        ...

    def supports_https(self, host: str) -> bool:  # pragma: no cover - protocol
        ...

    def get(self, url: str, **kwargs: object) -> "HttpResponse":  # pragma: no cover - protocol
        ...

    def post(
        self, url: str, form: dict[str, str], **kwargs: object
    ) -> "HttpResponse":  # pragma: no cover - protocol
        ...

    def request_log(
        self, host: str | None = None
    ) -> list["RequestLogEntry"]:  # pragma: no cover - protocol
        ...


@runtime_checkable
class PopulationLike(Protocol):
    """A ranked website population, lazily instantiated."""

    @property
    def size(self) -> int:  # pragma: no cover - protocol
        ...

    def spec_at_rank(self, rank: int) -> "SiteSpec":  # pragma: no cover - protocol
        ...

    def site_at_rank(self, rank: int) -> "Website":  # pragma: no cover - protocol
        ...

    def rank_of_host(self, host: str) -> int | None:  # pragma: no cover - protocol
        ...


__all__ = [
    "ClockLike",
    "EventQueueLike",
    "TransportLike",
    "PopulationLike",
]
