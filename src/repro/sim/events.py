"""A priority event queue driving scheduled simulation actions.

Attacker campaigns, provider dump exports and registration batches are
scheduled as events; :meth:`EventQueue.run_until` pops them in time
order, jumping the shared clock to each event's instant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import SimClock
from repro.util.timeutil import SimInstant


@dataclass(frozen=True)
class Event:
    """A scheduled action with a stable tiebreak order."""

    time: SimInstant
    sequence: int
    label: str
    action: Callable[[], None] = field(compare=False)

    def sort_key(self) -> tuple[SimInstant, int]:
        """Ordering: by time, then insertion order."""
        return (self.time, self.sequence)


class EventQueue:
    """Min-heap of events sharing one :class:`SimClock`."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._heap: list[tuple[tuple[SimInstant, int], Event]] = []
        self._counter = itertools.count()
        self._executed: list[Event] = []

    @property
    def clock(self) -> SimClock:
        """The clock this queue advances."""
        return self._clock

    def schedule(self, time: SimInstant, label: str, action: Callable[[], None]) -> Event:
        """Add an event; events in the past fire immediately on run."""
        event = Event(time=time, sequence=next(self._counter), label=label, action=action)
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> SimInstant | None:
        """Time of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][1].time

    def run_until(self, deadline: SimInstant) -> int:
        """Execute every event scheduled at or before ``deadline``.

        The clock jumps to each event's time (never backwards).  Events
        scheduled *by* an executing action are honored if they fall
        within the deadline.  Returns the number of events executed.
        """
        executed = 0
        while self._heap and self._heap[0][1].time <= deadline:
            _key, event = heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.action()
            self._executed.append(event)
            executed += 1
        self._clock.advance_to(deadline)
        return executed

    def run_all(self) -> int:
        """Execute every queued event regardless of time."""
        executed = 0
        while self._heap:
            _key, event = heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.action()
            self._executed.append(event)
            executed += 1
        return executed

    def executed_events(self) -> list[Event]:
        """Events already run, in execution order."""
        return list(self._executed)
