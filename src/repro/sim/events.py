"""A priority event queue driving scheduled simulation actions.

Attacker campaigns, provider dump exports and registration batches are
scheduled as events; :meth:`EventQueue.run_until` pops them in time
order, jumping the shared clock to each event's instant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import SimClock
from repro.util.timeutil import SimInstant


@dataclass(frozen=True)
class Event:
    """A scheduled action with a stable tiebreak order."""

    time: SimInstant
    sequence: int
    label: str
    action: Callable[[], None] = field(compare=False)

    def sort_key(self) -> tuple[SimInstant, int]:
        """Ordering: by time, then insertion order."""
        return (self.time, self.sequence)


class EventQueue:
    """Min-heap of events sharing one :class:`SimClock`.

    ``keep_history`` opts in to retaining every executed event for
    later inspection.  Retention is off by default: a campaign run
    executes O(sites) events per shard and the history is pure ballast
    there — only :attr:`executed_count` is tracked unconditionally.
    """

    def __init__(self, clock: SimClock, keep_history: bool = False):
        self._clock = clock
        self._heap: list[tuple[tuple[SimInstant, int], Event]] = []
        self._counter = itertools.count()
        self._keep_history = keep_history
        self._executed: list[Event] = []
        self._executed_count = 0

    @property
    def clock(self) -> SimClock:
        """The clock this queue advances."""
        return self._clock

    def schedule(self, time: SimInstant, label: str, action: Callable[[], None]) -> Event:
        """Add an event; events in the past fire immediately on run."""
        event = Event(time=time, sequence=next(self._counter), label=label, action=action)
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> SimInstant | None:
        """Time of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][1].time

    def run_until(self, deadline: SimInstant) -> int:
        """Execute every event scheduled at or before ``deadline``.

        The clock jumps to each event's time (never backwards).  Events
        scheduled *by* an executing action are honored if they fall
        within the deadline.  Returns the number of events executed.
        """
        executed = 0
        while self._heap and self._heap[0][1].time <= deadline:
            _key, event = heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.action()
            self._record(event)
            executed += 1
        self._clock.advance_to(deadline)
        return executed

    def run_all(self) -> int:
        """Execute every queued event regardless of time."""
        executed = 0
        while self._heap:
            _key, event = heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.action()
            self._record(event)
            executed += 1
        return executed

    def _record(self, event: Event) -> None:
        self._executed_count += 1
        if self._keep_history:
            self._executed.append(event)

    @property
    def executed_count(self) -> int:
        """How many events have run (tracked even without history)."""
        return self._executed_count

    def executed_events(self) -> list[Event]:
        """Events already run, in execution order.

        Requires ``keep_history=True`` at construction; without it the
        queue deliberately retains nothing, and asking for the history
        is a caller bug rather than an empty answer.
        """
        if not self._keep_history:
            raise RuntimeError(
                "event history disabled; construct EventQueue(clock, "
                "keep_history=True) to retain executed events"
            )
        return list(self._executed)
