"""A priority event queue driving scheduled simulation actions.

Attacker campaigns, provider dump exports and registration batches are
scheduled as events; :meth:`EventQueue.run_until` pops them in time
order, jumping the shared clock to each event's instant.

Service mode (:mod:`repro.service`) adds two requirements the batch
scenarios never had: events must be **cancellable** (a daemon shutting
down revokes its outstanding work) and **recurring** (re-login probes,
telemetry ingestion and account-lifecycle churn fire on an interval
for the life of the run).  Cancellation is lazy — a cancelled event
stays in the heap but is discarded unexecuted when it surfaces — so
``cancel`` is O(1) and the heap invariant is untouched.  Recurring
events are plain events that reschedule themselves on fire, managed
through a :class:`RecurringEvent` handle.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import SimClock
from repro.util.timeutil import SimInstant


@dataclass(frozen=True)
class Event:
    """A scheduled action with a stable tiebreak order."""

    time: SimInstant
    sequence: int
    label: str
    action: Callable[[], None] = field(compare=False)

    def sort_key(self) -> tuple[SimInstant, int]:
        """Ordering: by time, then insertion order."""
        return (self.time, self.sequence)


class RecurringEvent:
    """Handle for an event that reschedules itself on fire.

    Created by :meth:`EventQueue.schedule_recurring`; holds the
    currently pending occurrence and a cumulative fire count.
    :meth:`cancel` revokes the pending occurrence and stops the chain —
    callable any time, including from inside the event's own action.
    """

    __slots__ = ("queue", "label", "interval", "until", "fired", "_pending", "_stopped")

    def __init__(self, queue: "EventQueue", label: str, interval: int,
                 until: SimInstant | None):
        self.queue = queue
        self.label = label
        self.interval = interval
        self.until = until
        self.fired = 0
        self._pending: Event | None = None
        self._stopped = False

    @property
    def active(self) -> bool:
        """Whether another occurrence is pending."""
        return not self._stopped and self._pending is not None

    @property
    def next_time(self) -> SimInstant | None:
        """When the next occurrence fires (None once stopped/expired)."""
        return self._pending.time if self.active else None

    def cancel(self) -> bool:
        """Revoke the pending occurrence and end the chain.

        Returns True when a pending occurrence was actually cancelled;
        False when the chain had already stopped (idempotent).
        """
        if self._stopped:
            return False
        self._stopped = True
        pending, self._pending = self._pending, None
        if pending is None:
            return False
        return self.queue.cancel(pending)


class EventQueue:
    """Min-heap of events sharing one :class:`SimClock`.

    ``keep_history`` opts in to retaining every executed event for
    later inspection.  Retention is off by default: a campaign run
    executes O(sites) events per shard and the history is pure ballast
    there — only :attr:`executed_count` is tracked unconditionally.
    """

    def __init__(self, clock: SimClock, keep_history: bool = False):
        self._clock = clock
        self._heap: list[tuple[tuple[SimInstant, int], Event]] = []
        self._counter = itertools.count()
        self._keep_history = keep_history
        self._executed: list[Event] = []
        self._executed_count = 0
        #: Sequence numbers of live (pending, uncancelled) events.
        self._pending: set[int] = set()
        #: Sequence numbers of cancelled-but-not-yet-popped events.
        self._cancelled: set[int] = set()

    @property
    def clock(self) -> SimClock:
        """The clock this queue advances."""
        return self._clock

    def schedule(self, time: SimInstant, label: str, action: Callable[[], None]) -> Event:
        """Add an event; events in the past fire immediately on run."""
        event = Event(time=time, sequence=next(self._counter), label=label, action=action)
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._pending.add(event.sequence)
        return event

    def schedule_recurring(
        self,
        start: SimInstant,
        interval: int,
        label: str,
        action: Callable[[], None],
        until: SimInstant | None = None,
    ) -> RecurringEvent:
        """Schedule ``action`` at ``start`` and every ``interval`` after.

        The chain ends when the next occurrence would land past
        ``until`` (inclusive bound), or when the returned handle is
        cancelled.  ``action`` itself may cancel the handle to stop
        after the current firing.
        """
        if interval <= 0:
            raise ValueError("recurring interval must be positive")
        handle = RecurringEvent(self, label, interval, until)

        def fire() -> None:
            handle._pending = None
            action()
            handle.fired += 1
            if handle._stopped:
                return
            next_time = self._clock.now() + interval
            if until is not None and next_time > until:
                handle._stopped = True
                return
            handle._pending = self.schedule(next_time, label, fire)

        handle._pending = self.schedule(start, label, fire)
        return handle

    def cancel(self, event: Event) -> bool:
        """Revoke a pending event; it will be discarded unexecuted.

        Lazy: the heap entry stays put and is dropped when it surfaces.
        Returns True when the event was pending, False when it already
        executed, was already cancelled, or never belonged here.
        Cancelled events do not advance the clock and do not count in
        :attr:`executed_count`.
        """
        if event.sequence not in self._pending:
            return False
        self._pending.discard(event.sequence)
        self._cancelled.add(event.sequence)
        return True

    def __len__(self) -> int:
        return len(self._pending)

    def _discard_cancelled_head(self) -> bool:
        """Drop the head if it was cancelled; True when one was dropped."""
        if self._heap and self._heap[0][1].sequence in self._cancelled:
            _key, event = heapq.heappop(self._heap)
            self._cancelled.discard(event.sequence)
            return True
        return False

    def peek_time(self) -> SimInstant | None:
        """Time of the next live event, or None when empty."""
        while self._discard_cancelled_head():
            pass
        if not self._heap:
            return None
        return self._heap[0][1].time

    def run_until(self, deadline: SimInstant) -> int:
        """Execute every event scheduled at or before ``deadline``.

        The clock jumps to each event's time (never backwards).  Events
        scheduled *by* an executing action are honored if they fall
        within the deadline.  Returns the number of events executed.
        """
        executed = 0
        while self._heap and self._heap[0][1].time <= deadline:
            if self._discard_cancelled_head():
                continue
            _key, event = heapq.heappop(self._heap)
            self._pending.discard(event.sequence)
            self._clock.advance_to(event.time)
            event.action()
            self._record(event)
            executed += 1
        self._clock.advance_to(deadline)
        return executed

    def run_all(self) -> int:
        """Execute every queued event regardless of time."""
        executed = 0
        while self._heap:
            if self._discard_cancelled_head():
                continue
            _key, event = heapq.heappop(self._heap)
            self._pending.discard(event.sequence)
            self._clock.advance_to(event.time)
            event.action()
            self._record(event)
            executed += 1
        return executed

    def _record(self, event: Event) -> None:
        self._executed_count += 1
        if self._keep_history:
            self._executed.append(event)

    @property
    def executed_count(self) -> int:
        """How many events have run (tracked even without history)."""
        return self._executed_count

    def executed_events(self) -> list[Event]:
        """Events already run, in execution order.

        Requires ``keep_history=True`` at construction; without it the
        queue deliberately retains nothing, and asking for the history
        is a caller bug rather than an empty answer.
        """
        if not self._keep_history:
            raise RuntimeError(
                "event history disabled; construct EventQueue(clock, "
                "keep_history=True) to retain executed events"
            )
        return list(self._executed)
