"""Disclosure to compromised sites (Section 6.3).

The coordinator assembles candidate contact addresses (site contact
page, WHOIS registrant, conventional security@/webmaster@ aliases),
checks deliverability against DNS MX records — site J's disclosure
failed precisely because its domain had no MX — and records the site's
response per a model calibrated to the paper's experience: six of
eighteen sites responded; responders were quick; only one corroborated
a breach; none notified users.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.net.dns import DnsResolver, NxDomain
from repro.util.timeutil import DAY, MINUTE, SimInstant


class ResponseKind(enum.Enum):
    """How a site reacted to disclosure."""

    NO_RESPONSE = "no_response"
    ENGAGED_UNCORROBORATED = "engaged_uncorroborated"  # investigated, found nothing
    CORROBORATED = "corroborated"  # confirmed a known breach
    ACKNOWLEDGED_WEAK_SECURITY = "acknowledged_weak_security"
    DISPUTED = "disputed"


@dataclass
class DisclosureRecord:
    """The full disclosure interaction with one site."""

    site_host: str
    sent_at: SimInstant
    contacts: list[str]
    deliverable: bool
    response: ResponseKind = ResponseKind.NO_RESPONSE
    response_delay: int = 0  # seconds after notification
    promised_password_reset: bool = False
    performed_password_reset: bool = False
    notified_users: bool = False
    notes: list[str] = field(default_factory=list)


class DisclosureCoordinator:
    """Sends notifications and simulates site responses."""

    #: Six of eighteen contacted sites responded.
    RESPONSE_RATE = 6 / 18

    def __init__(self, dns: DnsResolver, rng: random.Random):
        self._dns = dns
        self._rng = rng
        self.records: list[DisclosureRecord] = []

    def candidate_contacts(self, site_host: str) -> list[str]:
        """Addresses worth trying, most specific first."""
        return [
            f"security@{site_host}",
            f"webmaster@{site_host}",
            f"admin@{site_host}",
            f"registrant@{site_host}",  # stands in for WHOIS contact data
        ]

    def _deliverable(self, site_host: str) -> bool:
        try:
            return bool(self._dns.resolve_mx(site_host))
        except NxDomain:
            return False

    def disclose(self, site_host: str, now: SimInstant, skip: bool = False) -> DisclosureRecord:
        """Notify one site (unless its breach is already public)."""
        record = DisclosureRecord(
            site_host=site_host,
            sent_at=now,
            contacts=self.candidate_contacts(site_host),
            deliverable=self._deliverable(site_host),
        )
        if skip:
            record.notes.append("breach already public; no notification sent")
            self.records.append(record)
            return record
        if not record.deliverable:
            record.notes.append("domain has no MX record; mail undeliverable")
            self.records.append(record)
            return record
        if self._rng.random() < self.RESPONSE_RATE:
            self._simulate_response(record)
        self.records.append(record)
        return record

    def _simulate_response(self, record: DisclosureRecord) -> None:
        rng = self._rng
        # Responders replied anywhere from ten minutes to six days in.
        record.response_delay = int(rng.uniform(10 * MINUTE, 6 * DAY))
        roll = rng.random()
        if roll < 0.15:
            record.response = ResponseKind.CORROBORATED
            record.notes.append("breach was already known to the operator")
        elif roll < 0.55:
            record.response = ResponseKind.ENGAGED_UNCORROBORATED
            record.notes.append("internal + third-party investigation found nothing")
        elif roll < 0.85:
            record.response = ResponseKind.ACKNOWLEDGED_WEAK_SECURITY
            record.notes.append("operator acknowledged security was not a priority")
            if rng.random() < 0.5:
                record.promised_password_reset = True
                record.notes.append("promised a forced password reset (never performed)")
        else:
            record.response = ResponseKind.DISPUTED
            record.notes.append("disputed the claim without an alternative explanation")
        record.response_delay = max(record.response_delay, 10 * MINUTE)
        # No site in the paper notified users; hold that behavior fixed.
        record.notified_users = False

    # -- summary ---------------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Aggregate counts over all disclosures."""
        responded = [r for r in self.records if r.response is not ResponseKind.NO_RESPONSE]
        return {
            "sites_contacted": sum(1 for r in self.records if "no notification" not in " ".join(r.notes)),
            "undeliverable": sum(1 for r in self.records if not r.deliverable),
            "responded": len(responded),
            "corroborated": sum(1 for r in responded if r.response is ResponseKind.CORROBORATED),
            "disputed": sum(1 for r in responded if r.response is ResponseKind.DISPUTED),
            "notified_users": sum(1 for r in self.records if r.notified_users),
            "promised_reset": sum(1 for r in self.records if r.promised_password_reset),
        }
