"""Registration campaigns (Sections 4.3.1, 5.1, 5.2).

The campaign walks a ranked URL list, filters out shared-backend
domains, and for each remaining site attempts a hard-password
registration first; when the crawler believes it succeeded, an
easy-password attempt (and occasionally a second hard attempt) is
enqueued.  Identities are burned the moment credentials were exposed,
and the mail server is told to expect registration mail.

The hard-then-easy ordering is the bias the paper flags in §6.1.2 —
:class:`RegistrationPolicy` exposes it (and the alternatives a future
deployment should prefer) for the ablation bench.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.system import TripwireSystem
from repro.crawler.outcomes import CrawlOutcome, TerminationCode
from repro.data.sites import SHARED_BACKENDS
from repro.identity.passwords import PasswordClass
from repro.identity.records import Identity
from repro.util.timeutil import SimInstant
from repro.web.population import RankedSite


class RegistrationPolicy(enum.Enum):
    """Order in which password classes are attempted per site."""

    HARD_FIRST = "hard_first"  # the paper's (biased) pilot behavior
    EASY_FIRST = "easy_first"
    SIMULTANEOUS = "simultaneous"  # both attempted unconditionally


@dataclass
class AttemptRecord:
    """One registration attempt bound to its site and identity."""

    site_host: str
    rank: int
    url: str
    identity: Identity
    password_class: PasswordClass
    outcome: CrawlOutcome
    manual: bool = False
    registered_at: SimInstant = 0

    @property
    def exposed(self) -> bool:
        """Whether the identity was shown to the site (and burned)."""
        return self.manual or self.outcome.exposed_credentials

    @property
    def believed_success(self) -> bool:
        """Whether the crawler's heuristics reported success."""
        return self.manual or self.outcome.code is TerminationCode.OK_SUBMISSION


@dataclass
class CampaignStats:
    """Counters over one campaign run."""

    sites_considered: int = 0
    sites_filtered: int = 0
    attempts: int = 0
    exposed_attempts: int = 0
    identities_consumed: int = 0
    skipped_no_identity: int = 0


class RegistrationCampaign:
    """Drives the crawler across a ranked site list."""

    #: URL filter for sites known to share a backend (Section 5.1).
    BACKEND_FILTER = re.compile(
        "|".join(re.escape(b) for b in SHARED_BACKENDS), re.IGNORECASE
    )

    def __init__(
        self,
        system: TripwireSystem,
        policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST,
        second_hard_probability: float = 0.15,
    ):
        self.system = system
        self.policy = policy
        self.second_hard_probability = second_hard_probability
        tree = getattr(system, "apparatus_tree", None) or system.tree
        self._rng = tree.child("campaign").rng()
        self.attempts: list[AttemptRecord] = []
        self.stats = CampaignStats()
        self._attempted_hosts: set[str] = set()
        # Incremental per-host indexes; scanning `attempts` per site is
        # quadratic over a ranked list (the pilot walks tens of
        # thousands of entries).
        self._attempts_by_host: dict[str, list[AttemptRecord]] = {}
        self._succeeded_hosts: set[str] = set()

    # -- batch API -----------------------------------------------------------------

    def run_batch(self, sites: list[RankedSite], skip_already_attempted: bool = True) -> int:
        """Attempt registrations across a ranked list; returns attempts made."""
        made = 0
        for entry in sites:
            self.stats.sites_considered += 1
            if self.BACKEND_FILTER.search(entry.host):
                self.stats.sites_filtered += 1
                continue
            if skip_already_attempted and entry.host in self._attempted_hosts:
                continue
            self._attempted_hosts.add(entry.host)
            made += self._attempt_site(entry)
            # Let scheduled world events (attacker checks, dumps) that
            # came due during the crawl fire in order.
            self.system.queue.run_until(self.system.clock.now())
        return made

    def _attempt_site(self, entry: RankedSite) -> int:
        # Instantiating wires the site into DNS/transport.
        self.system.population.site_at_rank(
            self.system.population.rank_of_host(entry.host)
            or self._rank_from_entry(entry)
        )
        if self.policy is RegistrationPolicy.EASY_FIRST:
            order = [PasswordClass.EASY, PasswordClass.HARD]
        else:
            order = [PasswordClass.HARD, PasswordClass.EASY]

        first = self._single_attempt(entry, order[0])
        attempts = 1 if first is not None else 0
        if first is None:
            return attempts

        proceed = (
            self.policy is RegistrationPolicy.SIMULTANEOUS or first.believed_success
        )
        if proceed:
            second = self._single_attempt(entry, order[1])
            if second is not None:
                attempts += 1
            if (
                second is not None
                and first.believed_success
                and self._rng.random() < self.second_hard_probability
            ):
                third = self._single_attempt(entry, PasswordClass.HARD)
                if third is not None:
                    attempts += 1
        return attempts

    def _rank_from_entry(self, entry: RankedSite) -> int:
        # Quantcast entries carry their own positions; fall back to the
        # canonical rank when the host is known, else treat position as rank.
        return entry.rank

    def _single_attempt(self, entry: RankedSite, password_class: PasswordClass) -> AttemptRecord | None:
        system = self.system
        identity = system.pool.checkout_any(entry.host, password_class)
        if identity is None:
            self.stats.skipped_no_identity += 1
            return None
        # Announce the expectation up front: verification mail can land
        # while the crawl is still in flight.
        started = system.clock.now()
        system.mail_server.expect_registration(identity.email_local, entry.host, started)
        outcome = system.crawler.register_at(entry.url, identity)
        record = AttemptRecord(
            site_host=entry.host,
            rank=system.population.rank_of_host(entry.host) or entry.rank,
            url=entry.url,
            identity=identity,
            password_class=password_class,
            outcome=outcome,
            registered_at=outcome.started_at,
        )
        if outcome.exposed_credentials:
            system.pool.burn(identity.identity_id)
            self.stats.exposed_attempts += 1
            self.stats.identities_consumed += 1
        else:
            system.pool.release(identity.identity_id)
        self._remember(record)
        self.stats.attempts += 1
        return record

    def _remember(self, record: AttemptRecord) -> None:
        self.attempts.append(record)
        self._attempts_by_host.setdefault(record.site_host, []).append(record)
        if record.believed_success:
            self._succeeded_hosts.add(record.site_host)

    def record_external_attempt(self, record: AttemptRecord) -> None:
        """Fold an attempt made outside the batch API into the ledger.

        Scenario code (e.g. §6.1.4 re-registration) drives the crawler
        directly but still wants the attempt in this campaign's history
        and indexes.
        """
        self._remember(record)

    # -- manual registration (Section 5.1's top-500 pass) ----------------------------

    def manual_register(self, entry: RankedSite) -> AttemptRecord | None:
        """A human operator registers at an eligible English site.

        The operator reads the page, so field identification is exact;
        only genuinely eligible sites succeed.  The paper registered
        manually with easy passwords only (Table 1's Manual row).
        """
        system = self.system
        rank = system.population.rank_of_host(entry.host) or entry.rank
        spec = system.population.spec_at_rank(rank)
        if not spec.eligible_for_tripwire:
            return None
        if entry.host in self._succeeded_hosts:
            return None  # already have an account here
        site = system.population.site_at_rank(rank)
        identity = system.pool.checkout_any(entry.host, PasswordClass.EASY)
        if identity is None:
            self.stats.skipped_no_identity += 1
            return None
        now = system.clock.now()
        # The registration must be announced before the form is
        # submitted so the mail server clicks the verification link.
        system.mail_server.expect_registration(identity.email_local, entry.host, now)
        accepted = self._human_fill_and_submit(site, spec, identity)
        if not accepted:
            # Credentials were still shown to the site: the identity is
            # burned, but we record nothing as a success.  (In practice
            # human registration succeeded on every eligible site.)
            system.pool.burn(identity.identity_id)
            return None
        outcome = CrawlOutcome(
            site_host=entry.host,
            url=entry.url,
            code=TerminationCode.OK_SUBMISSION,
            detail="manual registration",
            exposed_email=True,
            exposed_password=True,
            pages_loaded=0,
            started_at=now,
            finished_at=now,
        )
        record = AttemptRecord(
            site_host=entry.host,
            rank=rank,
            url=entry.url,
            identity=identity,
            password_class=PasswordClass.EASY,
            outcome=outcome,
            manual=True,
            registered_at=now,
        )
        self._remember(record)
        self.stats.attempts += 1
        self.stats.exposed_attempts += 1
        self._attempted_hosts.add(entry.host)
        system.clock.advance(120)  # a couple of minutes of human time
        return record

    def _human_fill_and_submit(self, site, spec, identity: Identity) -> bool:
        """Drive the site's registration over HTTP with perfect knowledge.

        A human operator reads labels correctly, solves captchas by
        looking at them, and completes multi-stage flows.  Returns
        whether the site accepted the registration.
        """
        from repro.html.parser import parse_html
        from repro.net.transport import TransportError
        from repro.web.captcha import captcha_answer_for
        from repro.web.spec import BotCheck, RegistrationStyle
        from repro.web.pages import registration_fields

        system = self.system
        host = spec.host
        scheme = "https" if spec.supports_https else "http"
        base = f"{scheme}://{host}"
        reg = spec.registration_path.rstrip("/")
        client_ip = system.proxy_pool.acquire_for_site(host)
        names = site.lex.field_names

        def value_for(semantic: str) -> str:
            mapping = {
                "email": identity.email_address,
                "username": identity.site_username,
                "password": identity.password,
                "password_confirm": identity.password,
                "first_name": identity.first_name,
                "last_name": identity.last_name,
                "phone": identity.phone,
            }
            return mapping[semantic]

        def bot_fields(page_body: str) -> dict[str, str]:
            dom = parse_html(page_body)
            extra: dict[str, str] = {}
            for node in dom.iter():
                token = node.get("data-challenge")
                if token:
                    extra[names["captcha"]] = captcha_answer_for(token)
                    extra["_challenge_token"] = token
            if spec.bot_check is BotCheck.INTERACTIVE:
                extra[f"{names['captcha']}_response"] = "human-verified"
            return extra

        def common_fields(semantics: list[str]) -> dict[str, str]:
            return {names[s]: value_for(s) for s in semantics}

        before = len(site.registration_log)
        try:
            system.clock.advance(60)  # human think time per page
            page = system.transport.get(f"{base}{reg}", client_ip=client_ip)
            if spec.registration_style is RegistrationStyle.MULTISTAGE:
                step1 = common_fields(registration_fields(spec, site.lex, step=1))
                system.clock.advance(60)
                step2_page = system.transport.post(
                    f"{base}{reg}/step2", step1, client_ip=client_ip
                )
                dom = parse_html(step2_page.body)
                stage_token = ""
                for node in dom.iter():
                    if node.get("name") == "stage_token":
                        stage_token = node.get("value")
                form = common_fields(registration_fields(spec, site.lex, step=2))
                form["stage_token"] = stage_token
                form.update(bot_fields(step2_page.body))
            else:
                form = common_fields(registration_fields(spec, site.lex, step=1))
                form.update(bot_fields(page.body))
            if spec.wants_terms_checkbox:
                form[names["terms"]] = "1"
            if spec.extra_unlabeled_field:
                form["x_fld_71"] = "n/a"
            system.clock.advance(90)
            system.transport.post(f"{base}{reg}/submit", form, client_ip=client_ip)
        except TransportError:
            # Under fault injection the connection can flap mid-flow.
            # Credentials may already have crossed the wire, so the
            # caller burns the identity; the registration just failed.
            return False
        log = site.registration_log[before:]
        return any(r.accepted and r.email == identity.email_address for r in log)

    # -- views --------------------------------------------------------------------------

    def attempts_for_site(self, host: str) -> list[AttemptRecord]:
        """All attempts at one site, oldest first."""
        return list(self._attempts_by_host.get(host.lower(), ()))

    def exposed_attempts(self) -> list[AttemptRecord]:
        """Attempts where an identity was burned (Table 1's universe)."""
        return [a for a in self.attempts if a.exposed]
