"""The world substrate: everything a measurement runs *against*.

A :class:`WorldShard` bundles the simulation kernel (clock + event
queue), the network plane (transport, WHOIS, DNS) and the lazily
instantiated website population.  Shards are cheap and independent:
a sharded campaign builds one per rank-partition, each from the same
root seed, so every shard generates byte-identical site specs for the
ranks it touches while keeping all mutable state (clock, request logs,
site storage) private to the shard.

The apparatus layer (:mod:`repro.core.apparatus`) is wired against the
:mod:`repro.sim.protocols` seams, never against a shard directly, so
either a full shared world or a per-shard world can sit underneath it.

With a :class:`~repro.faults.plan.FaultPlan`, the substrate's own seams
are wrapped in fault injectors: the transport flaps (unreachable hosts,
TLS failures, slow responses) and the resolver intermittently fails.
Injector randomness derives from the substrate tree at
``("faults", plan.seed, <component>)``, so the fault stream is a pure
function of ``(world seed, plan)`` and sharded runs stay bit-identical
to serial with chaos enabled.
"""

from __future__ import annotations

from repro.faults.injectors import DnsFaultInjector, TransportFaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.obs import NO_OP, Observation
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.util.rngtree import RngTree
from repro.util.timeutil import STUDY_START, SimInstant
from repro.web.generator import GeneratorConfig
from repro.web.population import InternetPopulation
from repro.web.site import MailRouter


class WorldShard:
    """One self-contained slice of the simulated world.

    The substrate tree passed in governs site-spec generation; two
    shards built from the same tree agree on every spec (host names,
    eligibility, registration style) for every rank, which is what
    makes sharded results mergeable against a single ranked list.
    """

    def __init__(
        self,
        tree: RngTree,
        start: SimInstant = STUDY_START,
        fault_plan: FaultPlan | None = None,
        obs_enabled: bool = False,
    ):
        self.tree = tree
        self.clock = SimClock(start)
        #: One observation per world: spans, metrics and events are as
        #: shard-private as the clock, so a shard's capture is a pure
        #: function of its plan.  Disabled worlds share the no-op.
        self.obs = Observation(self.clock) if obs_enabled else NO_OP
        self.queue = EventQueue(self.clock)
        self.whois = WhoisRegistry()
        #: One report per world; apparatus-side injectors share it so a
        #: system yields a single merged fault ledger.
        self.fault_plan = fault_plan
        self.fault_report = FaultReport()

        transport = Transport(self.clock, obs=self.obs)
        dns = DnsResolver()
        if fault_plan is not None and fault_plan.enabled:
            fault_tree = tree.child("faults", fault_plan.seed)
            transport = TransportFaultInjector(
                transport, fault_plan, fault_tree.child("transport").rng(),
                self.fault_report, metrics=self.obs.metrics,
            )
            dns = DnsFaultInjector(
                dns, fault_plan, fault_tree.child("dns").rng(), self.fault_report,
                metrics=self.obs.metrics,
            )
        self.transport = transport
        self.dns = dns
        self.population: InternetPopulation | None = None

    def build_population(
        self,
        size: int,
        mail_router: MailRouter | None = None,
        config: GeneratorConfig | None = None,
        overrides: dict[int, dict[str, object]] | None = None,
        spec_cache: object | None = None,
    ) -> InternetPopulation:
        """Attach the ranked population (once) and return it.

        Built last because the mail router usually closes over the
        apparatus, which in turn needs the substrate's clock/transport.
        Sites register handlers and zones through the (possibly
        wrapped) transport/DNS — writes always delegate to the real
        objects, so faults only strike lookups and fetches.
        """
        if self.population is not None:
            raise RuntimeError("population already built for this shard")
        self.population = InternetPopulation(
            self.tree,
            self.clock,
            self.transport,
            self.whois,
            self.dns,
            size=size,
            mail_router=mail_router,
            config=config,
            overrides=overrides,
            spec_cache=spec_cache,
        )
        return self.population
