"""Success estimation by sampled manual login tests (Section 5.2.3).

For each account-status category, up to 50 attempts are sampled and a
"manual" login is performed at the corresponding site with the
registered credentials.  The sampled success rate then discounts the
attempted counts into the estimated-valid counts of Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.campaign import AttemptRecord
from repro.core.classify import AccountStatus, classify_attempt
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass


@dataclass
class CategoryEstimate:
    """Table 1's row for one category."""

    status: AccountStatus
    attempted_hard: int
    attempted_easy: int
    attempted_sites: int
    sample_size: int
    sample_successes: int
    estimated_hard: int
    estimated_easy: int
    estimated_sites: int

    @property
    def attempted_total(self) -> int:
        """Hard plus easy attempts."""
        return self.attempted_hard + self.attempted_easy

    @property
    def success_rate(self) -> float:
        """Sampled manual-login success rate."""
        if self.sample_size == 0:
            return 0.0
        return self.sample_successes / self.sample_size

    @property
    def estimated_total(self) -> int:
        """Estimated valid accounts."""
        return self.estimated_hard + self.estimated_easy


class SuccessEstimator:
    """Runs the sampling methodology over a finished campaign."""

    SAMPLE_SIZE = 50

    def __init__(self, system: TripwireSystem, rng: random.Random | None = None):
        self.system = system
        self._rng = rng or system.tree.child("estimation").rng()

    # -- login probing -----------------------------------------------------------

    def manual_login_works(self, attempt: AttemptRecord) -> bool:
        """Try to log in at the site with the attempt's credentials."""
        site = self.system.population.site_by_host(attempt.site_host)
        if site is None:
            return False
        identity = attempt.identity
        return site.check_credentials(identity.email_address, identity.password) or (
            site.check_credentials(identity.site_username, identity.password)
        )

    # -- estimation ----------------------------------------------------------------

    def classify_all(self, attempts: list[AttemptRecord]) -> dict[AccountStatus, list[AttemptRecord]]:
        """Group exposed attempts by account status."""
        buckets: dict[AccountStatus, list[AttemptRecord]] = {s: [] for s in AccountStatus}
        for attempt in attempts:
            status = classify_attempt(attempt, self.system.mail_server)
            if status is not None:
                buckets[status].append(attempt)
        return buckets

    def estimate(self, attempts: list[AttemptRecord]) -> list[CategoryEstimate]:
        """Produce Table 1's rows (one per category, in paper order)."""
        buckets = self.classify_all(attempts)
        order = (
            AccountStatus.EMAIL_VERIFIED,
            AccountStatus.EMAIL_RECEIVED,
            AccountStatus.OK_SUBMISSION,
            AccountStatus.BAD_HEURISTICS,
            AccountStatus.MANUAL,
        )
        estimates = []
        for status in order:
            bucket = buckets[status]
            estimates.append(self._estimate_category(status, bucket))
        return estimates

    def _estimate_category(self, status: AccountStatus, bucket: list[AttemptRecord]) -> CategoryEstimate:
        hard = [a for a in bucket if a.password_class is PasswordClass.HARD]
        easy = [a for a in bucket if a.password_class is PasswordClass.EASY]
        sites = {a.site_host for a in bucket}

        if status is AccountStatus.MANUAL:
            # Manual registrations were verified as they were made.
            sample, successes = len(bucket), len(bucket)
        else:
            sample_pool = list(bucket)
            if len(sample_pool) > self.SAMPLE_SIZE:
                sample_pool = self._rng.sample(sample_pool, self.SAMPLE_SIZE)
            successes = sum(1 for a in sample_pool if self.manual_login_works(a))
            sample = len(sample_pool)

        rate = successes / sample if sample else 0.0
        return CategoryEstimate(
            status=status,
            attempted_hard=len(hard),
            attempted_easy=len(easy),
            attempted_sites=len(sites),
            sample_size=sample,
            sample_successes=successes,
            estimated_hard=round(len(hard) * rate),
            estimated_easy=round(len(easy) * rate),
            estimated_sites=round(len(sites) * rate),
        )
