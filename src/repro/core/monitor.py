"""Compromise inference from provider login dumps (Sections 4.4, 6).

The monitor ingests the sporadic dumps and attributes each successful
login to exactly one of three populations:

- **control accounts** — our own periodic logins; every one must
  surface (pipeline liveness);
- **unused accounts** — provisioned but never registered anywhere; any
  login here means the provider or our own database was compromised,
  and raises an :class:`IntegrityAlarm`;
- **burned accounts** — one-to-one bound to a site; a login is
  Tripwire's detection signal for that site.

Per detected site, the monitor reports which accounts were accessed and
whether any hard-password account was among them (the plaintext-storage
inference of Section 6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.email_provider.telemetry import LoginEvent
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityPool
from repro.perf import caching as _perf
from repro.util.timeutil import SimInstant


@dataclass(frozen=True)
class AttributedLogin:
    """A dump event attributed to a registered identity."""

    event: LoginEvent
    identity_id: int
    site_host: str
    password_class: PasswordClass


@dataclass
class DetectedCompromise:
    """Everything the monitor knows about one tripped site."""

    site_host: str
    logins: list[AttributedLogin] = field(default_factory=list)

    @property
    def first_login_time(self) -> SimInstant:
        """When the first account access was observed."""
        return min(l.event.time for l in self.logins)

    @property
    def last_login_time(self) -> SimInstant:
        """Most recent observed access."""
        return max(l.event.time for l in self.logins)

    @property
    def accounts_accessed(self) -> set[str]:
        """Email locals that were accessed."""
        return {l.event.local_part for l in self.logins}

    @property
    def hard_accessed(self) -> bool:
        """Whether any hard-password account was accessed.

        True implies plaintext storage, a reversible hash, or online
        credential capture at the site.
        """
        return any(l.password_class is PasswordClass.HARD for l in self.logins)

    @property
    def login_count(self) -> int:
        """Total observed logins across the site's accounts."""
        return len(self.logins)

    def storage_inference(self) -> str:
        """The paper's password-management inference for this site."""
        if self.hard_accessed:
            return "plaintext-or-reversible (hard password accessed)"
        return "hashed (only dictionary-crackable passwords accessed)"


@dataclass(frozen=True)
class IntegrityAlarm:
    """A login that should have been impossible."""

    event: LoginEvent
    reason: str


class CompromiseMonitor:
    """Ingests login dumps and maintains detections."""

    def __init__(self, pool: IdentityPool, control_locals: set[str], provider_domain: str):
        self._pool = pool
        # Held by reference: control accounts may be provisioned after
        # the monitor is constructed.
        self._control = control_locals
        self._domain = provider_domain.lower()
        self.detections: dict[str, DetectedCompromise] = {}
        self.control_logins: list[LoginEvent] = []
        self.alarms: list[IntegrityAlarm] = []
        self.ingested_events = 0
        # Per-account login index for logins_for_account; append-only
        # alongside each detection's login list, so it never goes
        # stale.  Keys are lowercased email locals.
        self._logins_by_account: dict[str, list[AttributedLogin]] = {}

    def ingest_dump(self, events: list[LoginEvent]) -> list[AttributedLogin]:
        """Process one provider dump; returns newly attributed logins."""
        attributed: list[AttributedLogin] = []
        for event in events:
            self.ingested_events += 1
            local = event.local_part.lower()
            if local in self._control:
                self.control_logins.append(event)
                continue
            identity = self._pool.identity_for_email(f"{local}@{self._domain}")
            if identity is None:
                self.alarms.append(IntegrityAlarm(event, "login to account we never created"))
                continue
            site = self._pool.site_for(identity.identity_id)
            if site is None:
                self.alarms.append(
                    IntegrityAlarm(event, "login to unused (never-registered) account")
                )
                continue
            login = AttributedLogin(
                event=event,
                identity_id=identity.identity_id,
                site_host=site,
                password_class=identity.password_class,
            )
            self.detections.setdefault(site, DetectedCompromise(site_host=site))
            self.detections[site].logins.append(login)
            self._logins_by_account.setdefault(local, []).append(login)
            attributed.append(login)
        return attributed

    # -- views ----------------------------------------------------------------------

    def detected_sites(self) -> list[DetectedCompromise]:
        """All detections, ordered by first observed login."""
        return sorted(self.detections.values(), key=lambda d: d.first_login_time)

    def site_count(self) -> int:
        """Number of distinct sites detected as compromised."""
        return len(self.detections)

    def logins_for_account(self, email_local: str) -> list[AttributedLogin]:
        """All attributed logins for one account.

        Served from the per-account index — the reference scan walks
        every detection's logins per lookup, quadratic when callers
        iterate accounts (the analysis reports do).
        """
        wanted = email_local.lower()
        if _perf.enabled():
            return list(self._logins_by_account.get(wanted, ()))
        return [
            login
            for detection in self.detections.values()
            for login in detection.logins
            if login.event.local_part.lower() == wanted
        ]

    def detection_digest(self) -> str:
        """A stable hexdigest of the full detection state.

        Everything the analysis tables derive from — per-site login
        attributions, control liveness, integrity alarms — folded into
        one canonical string and hashed.  Two monitors with the same
        digest produce identical analysis tables; the service-mode
        resume tests pin resumed == uninterrupted with it.
        """
        import hashlib

        parts: list[str] = []
        for host in sorted(self.detections):
            for login in self.detections[host].logins:
                e = login.event
                parts.append(
                    f"d|{host}|{login.identity_id}|{login.password_class.value}"
                    f"|{e.local_part}|{e.time}|{e.ip.value}|{e.method.value}"
                )
        for e in self.control_logins:
            parts.append(f"c|{e.local_part}|{e.time}|{e.ip.value}|{e.method.value}")
        for alarm in self.alarms:
            e = alarm.event
            parts.append(f"a|{alarm.reason}|{e.local_part}|{e.time}|{e.ip.value}")
        parts.append(f"n|{self.ingested_events}")
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class DumpIngestion:
    """Incremental telemetry ingestion: provider dumps → monitor.

    The pull-at-end pattern (collect one dump after the run and feed
    the monitor) becomes a reusable, schedulable step: each call pulls
    whatever the provider currently exports — through the telemetry
    fault injector when one is installed, rescheduling the collection
    when the injector postpones the hand-off — and folds it into the
    monitor immediately.  Both the batch scenario's sporadic dump
    dates and the service daemon's recurring ingestion events call the
    same object, so detection state evolves identically however the
    dumps are scheduled.

    ``prune`` opts in to the continuous-operation memory bound: after
    each ingested dump the provider's telemetry drops events no future
    dump can return (see :meth:`LoginTelemetry.prune_exported`).
    """

    #: Queue label for a postponed collection (kept stable: journal
    #: events and the batch scenario's history both show it).
    LATE_LABEL = "provider-dump-late"

    def __init__(self, system, monitor: CompromiseMonitor, *, prune: bool = False):
        self.system = system
        self.monitor = monitor
        self.prune = prune
        self.dumps_ingested = 0

    def __call__(self) -> list[AttributedLogin]:
        """Collect one dump now and ingest it (schedulable action)."""
        system = self.system
        faults = system.apparatus.telemetry_faults
        if faults is None:
            events = system.provider.collect_login_dump()
        else:
            events, postpone = faults.collect_dump()
            if postpone is not None:
                # The provider missed the hand-off; the dump arrives
                # late but the events stay in their retention window.
                system.queue.schedule(
                    system.clock.now() + postpone, self.LATE_LABEL, self
                )
                return []
        attributed = self.monitor.ingest_dump(events)
        self.dumps_ingested += 1
        if self.prune:
            system.provider.telemetry.prune_exported(system.clock.now())
        return attributed
