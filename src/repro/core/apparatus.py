"""The measurement apparatus: everything Tripwire itself operates.

A :class:`MeasurementApparatus` owns the email-provider relationship,
the forwarding chain and mail server, the identity machinery and the
registration crawler.  It is wired against a
:class:`repro.core.substrate.WorldShard`'s protocol seams
(:mod:`repro.sim.protocols`), never against global singletons, so the
same apparatus code runs identically on the single shared world of
:class:`repro.core.system.TripwireSystem` and on each independent
shard of a :class:`repro.core.runner.CampaignRunner` execution.

Randomness comes from an *apparatus tree* that may be namespaced per
shard (``root.child("shard", k)``): shards then mint distinct
identities and crawl with distinct error streams, while the substrate
tree — which governs site specs — stays the root so every shard agrees
on what the web looks like.

With a :class:`~repro.faults.plan.FaultPlan`, the apparatus-side seams
degrade too: the captcha solver returns unsolved/mis-solved answers,
the forwarding chain's final leg drops/delays/duplicates mail (with the
hop retrying transient relay failures under the plan's
:class:`~repro.faults.retry.RetryPolicy`), provider dumps arrive late
or truncated, and the crawler retries transient failures with capped
backoff.  All injectors share the world's
:class:`~repro.faults.report.FaultReport`.
"""

from __future__ import annotations

from typing import Sequence

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.email_provider.provider import EmailProvider
from repro.faults.injectors import (
    MailFaultInjector,
    SolverFaultInjector,
    TelemetryFaultInjector,
)
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.identity.records import Identity
from repro.identity.pool import IdentityPool
from repro.mail.forwarding import ForwardingHop
from repro.mail.server import TripwireMailServer
from repro.net.proxies import ResearchProxyPool
from repro.core.substrate import WorldShard
from repro.util.rngtree import RngTree

#: Cover domains whose mail is hosted third-party then relayed to us.
DEFAULT_COVER_DOMAINS = ("plainmailbox.example", "mailrelay-7.example")


class MeasurementApparatus:
    """Provider, mail chain, identities and crawler over one substrate."""

    def __init__(
        self,
        world: WorldShard,
        tree: RngTree,
        provider_domain: str = "bigmail.example",
        retention_days: int = 60,
        crawler_config: CrawlerConfig | None = None,
        proxy_pool_size: int = 64,
        cover_domains: tuple[str, ...] = DEFAULT_COVER_DOMAINS,
    ):
        self.world = world
        self.tree = tree
        obs = world.obs
        plan = world.fault_plan
        faults_on = plan is not None and plan.enabled
        self.fault_report = world.fault_report
        #: The apparatus fault streams hang off the (possibly
        #: shard-namespaced) apparatus tree: shards inject independent
        #: apparatus-side fault sequences, deterministically.
        fault_tree = tree.child("faults", plan.seed) if faults_on else None

        # -- email provider and mail chain ---------------------------------
        self.provider = EmailProvider(
            provider_domain, world.clock, tree, retention_days=retention_days,
            obs=obs,
        )
        self.mail_server = TripwireMailServer(
            world.transport, tree.child("mail-server").rng()
        )
        deliver = self.mail_server.receive
        retry = None
        retry_rng = None
        if faults_on:
            assert plan is not None and fault_tree is not None
            deliver = MailFaultInjector(
                deliver, plan, fault_tree.child("mail").rng(),
                self.fault_report, queue=world.queue, metrics=obs.metrics,
            )
            retry = plan.retry
            retry_rng = fault_tree.child("mail-retry").rng()
        self.forwarding_hop = ForwardingHop(
            list(cover_domains), deliver,
            retry=retry, clock=world.clock, rng=retry_rng,
            fault_report=self.fault_report if faults_on else None,
            obs=obs,
        )
        self.provider.set_forwarding_hop(self.forwarding_hop)

        #: Telemetry dumps degrade only under a plan; the scenario's
        #: dump collector consults this when not None.
        self.telemetry_faults: TelemetryFaultInjector | None = None
        if faults_on:
            assert plan is not None and fault_tree is not None
            self.telemetry_faults = TelemetryFaultInjector(
                self.provider, plan, fault_tree.child("telemetry").rng(),
                self.fault_report, metrics=obs.metrics,
            )

        # -- identities ------------------------------------------------------
        self.identity_factory = IdentityFactory(tree, email_domain=provider_domain)
        self.pool = IdentityPool()
        self.control_locals: set[str] = set()
        self._forward_index = 0

        # -- crawler apparatus ------------------------------------------------
        self.proxy_pool = ResearchProxyPool(
            world.whois, tree.child("proxies").rng(), pool_size=proxy_pool_size
        )
        solver: CaptchaSolverService = CaptchaSolverService(tree.child("solver").rng())
        if faults_on:
            assert plan is not None and fault_tree is not None
            solver = SolverFaultInjector(
                solver, plan, fault_tree.child("solver").rng(), self.fault_report,
                metrics=obs.metrics,
            )
        self.solver = solver
        self.crawler = RegistrationCrawler(
            world.transport,
            self.solver,
            tree.child("crawler").rng(),
            config=crawler_config,
            proxy_pool=self.proxy_pool,
            retry_policy=plan.retry if faults_on else None,
            fault_report=self.fault_report if faults_on else None,
            obs=obs,
        )

    # -- identity provisioning ----------------------------------------------

    def provision_identities(
        self,
        count: int,
        password_class: PasswordClass,
        *,
        prebuilt: Sequence[Identity] | None = None,
        record: list[Identity] | None = None,
    ) -> int:
        """Create identities and the matching provider accounts.

        Identities the provider rejects (collision / naming policy) are
        discarded, as in the paper.  Returns how many joined the pool.

        ``prebuilt`` replays previously minted identities through the
        provider instead of drawing from the factory (the warm-worker
        corpus cache; ``EmailProvider.provision`` draws no randomness,
        so replay reproduces the cold path exactly — provided no further
        identities are minted from this apparatus afterwards).
        ``record`` collects every identity *created* (including ones the
        provider then rejects), which is exactly what a later replay
        needs.
        """
        added = 0
        for i in range(count):
            if prebuilt is not None:
                identity = prebuilt[i]
            else:
                identity = self.identity_factory.create(password_class)
            if record is not None:
                record.append(identity)
            result = self.provider.provision(
                identity.email_local,
                identity.full_name,
                identity.password,
                forwarding_address=self.forwarding_hop.address_for(
                    identity.email_local, self._forward_index
                ),
            )
            self._forward_index += 1
            if not result.created:
                continue
            self.pool.add(identity)
            added += 1
        return added

    def provision_control_accounts(self, count: int) -> list[str]:
        """Create control accounts we log into ourselves (Section 4.2)."""
        created = []
        for _ in range(count):
            identity = self.identity_factory.create(PasswordClass.HARD)
            result = self.provider.provision(
                identity.email_local, identity.full_name, identity.password
            )
            if not result.created:
                continue
            self.pool.add_control(identity)
            self.control_locals.add(identity.email_local.lower())
            created.append(identity.email_local)
        return created
