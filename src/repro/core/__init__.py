"""Tripwire core: the measurement system itself.

- :mod:`repro.core.substrate` — the world layer: clock, event queue,
  transport, WHOIS/DNS and site population as one :class:`WorldShard`.
- :mod:`repro.core.apparatus` — the measurement layer: provider, mail
  chain, identities and crawler as one :class:`MeasurementApparatus`.
- :mod:`repro.core.system` — the :class:`TripwireSystem` facade wiring
  one substrate and one apparatus into the familiar flat API.
- :mod:`repro.core.runner` — sharded campaign execution: partition a
  ranked list, run each shard on a private world (serial, thread-pool
  or process-pool), merge results deterministically.
- :mod:`repro.core.campaign` — registration campaigns: hard-first
  attempts, conditional easy/second-hard follow-ups, identity burning,
  shared-backend URL filtering, manual registrations.
- :mod:`repro.core.classify` — Table 1's account-status taxonomy.
- :mod:`repro.core.estimation` — sampled manual-login success
  estimation (Section 5.2.3).
- :mod:`repro.core.monitor` — login-dump ingestion and compromise
  inference, including control/unused-account integrity checks.
- :mod:`repro.core.disclosure` — the notification pipeline and site
  response model (Section 6.3).
- :mod:`repro.core.scenario` — the year-long pilot study end to end.
"""

from repro.core.system import TripwireSystem
from repro.core.substrate import WorldShard
from repro.core.apparatus import MeasurementApparatus
from repro.core.runner import CampaignRunner, CampaignRunResult, ShardPlan, ShardResult, ShardTelemetry
from repro.core.campaign import AttemptRecord, RegistrationCampaign, RegistrationPolicy
from repro.core.classify import AccountStatus, classify_attempt
from repro.core.estimation import CategoryEstimate, SuccessEstimator
from repro.core.monitor import CompromiseMonitor, DetectedCompromise, IntegrityAlarm
from repro.core.disclosure import DisclosureCoordinator, DisclosureRecord
from repro.core.scenario import PilotResult, PilotScenario, ScenarioConfig

__all__ = [
    "TripwireSystem",
    "WorldShard",
    "MeasurementApparatus",
    "CampaignRunner",
    "CampaignRunResult",
    "ShardPlan",
    "ShardResult",
    "ShardTelemetry",
    "RegistrationCampaign",
    "RegistrationPolicy",
    "AttemptRecord",
    "AccountStatus",
    "classify_attempt",
    "SuccessEstimator",
    "CategoryEstimate",
    "CompromiseMonitor",
    "DetectedCompromise",
    "IntegrityAlarm",
    "DisclosureCoordinator",
    "DisclosureRecord",
    "PilotScenario",
    "PilotResult",
    "ScenarioConfig",
]
