"""Account-status taxonomy (Table 1).

Every *exposed* attempt lands in exactly one bucket, evaluated after
the fact from the crawl outcome plus what the mail server saw:

- ``MANUAL`` — registered by the human operator;
- ``EMAIL_VERIFIED`` — a recognized verification message arrived;
- ``EMAIL_RECEIVED`` — some email arrived, but no verification;
- ``OK_SUBMISSION`` — heuristics said success, but no email ever came;
- ``BAD_HEURISTICS`` — credentials were exposed yet heuristics
  signaled failure (or the form was never submitted).
"""

from __future__ import annotations

import enum

from repro.core.campaign import AttemptRecord
from repro.mail.server import TripwireMailServer, VerificationOutcome


class AccountStatus(enum.Enum):
    """Table 1's row categories."""

    EMAIL_VERIFIED = "email_verified"
    EMAIL_RECEIVED = "email_received"
    OK_SUBMISSION = "ok_submission"
    BAD_HEURISTICS = "bad_heuristics"
    MANUAL = "manual"

    @property
    def label(self) -> str:
        """Human-readable row label used by the analysis tables."""
        return {
            AccountStatus.EMAIL_VERIFIED: "Email verified",
            AccountStatus.EMAIL_RECEIVED: "Email received",
            AccountStatus.OK_SUBMISSION: "OK submission",
            AccountStatus.BAD_HEURISTICS: "Bad heuristics/Fields missing",
            AccountStatus.MANUAL: "Manual",
        }[self]


#: Paper-reported manual-login success rates per category, for
#: side-by-side comparison in the Table 1 bench.
PAPER_SUCCESS_RATES = {
    AccountStatus.EMAIL_VERIFIED: 0.98,
    AccountStatus.EMAIL_RECEIVED: 0.82,
    AccountStatus.OK_SUBMISSION: 0.59,
    AccountStatus.BAD_HEURISTICS: 0.07,
    AccountStatus.MANUAL: 1.00,
}


def classify_attempt(attempt: AttemptRecord, mail_server: TripwireMailServer) -> AccountStatus | None:
    """Bucket one attempt; None when the identity was never exposed."""
    if not attempt.exposed:
        return None
    if attempt.manual:
        return AccountStatus.MANUAL
    local = attempt.identity.email_local
    since = attempt.registered_at
    verification = mail_server.verification_state(local, since=since)
    if verification is not None and verification is not VerificationOutcome.NOT_EXPECTED:
        return AccountStatus.EMAIL_VERIFIED
    if mail_server.received_any(local, since=since):
        return AccountStatus.EMAIL_RECEIVED
    if attempt.believed_success:
        return AccountStatus.OK_SUBMISSION
    return AccountStatus.BAD_HEURISTICS
