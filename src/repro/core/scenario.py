"""The pilot study, end to end (Sections 5 and 6).

Timeline reproduced:

- **Dec 2014** — seed crawl over the merged Alexa+Quantcast top lists;
- **Jan–Mar 2015** — the main crawl over the Alexa top list;
- **Nov 2015** — a second sweep over a larger prefix;
- **May 2016** — manual registrations at the top-ranked eligible sites,
  plus re-registration at sites already detected as compromised;
- breaches strike registered sites from Spring 2015 onward; attackers
  crack what the storage policy allows and feed credentials into
  botnet-driven reuse checks at the email provider;
- sporadic provider dumps (with the Spring-2015 retention gap) feed the
  monitor; disclosures go out in September and November 2016;
- observation ends **February 1, 2017**.

Counts are scaled by configuration; the default is a 10%-scale world
that runs in well under a minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.breach import BreachEvent, BreachMethod, execute_breach
from repro.attacker.checker import CredentialChecker
from repro.attacker.cracking import crack_records
from repro.attacker.monetize import Monetizer
from repro.attacker.profiles import draw_profile
from repro.core.campaign import RegistrationCampaign, RegistrationPolicy
from repro.core.disclosure import DisclosureCoordinator
from repro.core.estimation import CategoryEstimate, SuccessEstimator
from repro.core.monitor import CompromiseMonitor, DumpIngestion
from repro.core.system import TripwireSystem
from repro.crawler.engine import CrawlerConfig
from repro.faults.plan import FaultPlan
from repro.identity.passwords import PasswordClass
from repro.util.timeutil import (
    DAY,
    LOG_GAP_START,
    MAIN_CRAWL_START,
    MANUAL_CRAWL_START,
    SEED_CRAWL_START,
    STUDY_END,
    TOP30K_CRAWL_START,
    SimInstant,
    instant_from_date,
)
from repro.web.generator import GeneratorConfig
from repro.web.passwords import PasswordStorage
from repro.web.site import Website


@dataclass
class ScenarioConfig:
    """Scale and behavior knobs for a pilot run."""

    seed: int = 7
    population_size: int = 3000
    seed_list_size: int = 200  # per ranking provider (paper: 1,000 each)
    main_crawl_top: int = 2500  # paper: 25,000
    second_crawl_top: int = 3000  # paper: 30,000
    manual_top: int = 50  # paper: 500
    breach_count: int = 19
    breach_hard_exposing: int = 10  # sites where hard passwords leak
    breach_easy_only_site: int = 1  # a site with only an easy account (site P)
    unused_account_count: int = 1000  # paper: >100,000
    control_account_count: int = 8
    organic_accounts_range: tuple[int, int] = (20, 120)
    retention_days: int = 60
    test_fraction: float = 1.0  # attacker credential-sampling rate
    avoided_domains: tuple[str, ...] = ()  # attacker provider avoidance
    registration_policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST
    #: Shared-backend site pairs (the paper's sites E/F): one breach
    #: exposes the whole family, with temporally aligned checking.
    site_family_count: int = 1
    #: §6.1.4: one re-registered site gets breached again (site H was
    #: the only site whose post-detection account was accessed).
    rebreach_one_site: bool = True
    end: SimInstant = STUDY_END
    dump_dates: tuple[SimInstant, ...] | None = None
    generator_config: GeneratorConfig | None = None
    crawler_config: CrawlerConfig | None = None
    site_overrides: dict[int, dict[str, object]] = field(default_factory=dict)
    #: Deterministic chaos: None (or an all-zero plan) reproduces the
    #: fault-free run bit for bit.
    fault_plan: FaultPlan | None = None
    #: Observability: spans, metrics and events recorded against the
    #: sim clock.  Off by default — the no-op path costs nothing.
    obs_enabled: bool = False

    def default_dump_dates(self) -> tuple[SimInstant, ...]:
        """Sporadic dumps reproducing the Spring-2015 retention gap."""
        if self.dump_dates is not None:
            return self.dump_dates
        dates = [LOG_GAP_START]  # 2015-03-20: the last dump before the gap
        cursor = instant_from_date(2015, 8, 1)
        while cursor < self.end:
            dates.append(cursor)
            cursor += 55 * DAY
        dates.append(self.end)
        return tuple(dates)


@dataclass
class GroundTruthBreach:
    """What actually happened to one site (simulation ground truth)."""

    event: BreachEvent
    stolen_count: int
    cracked_count: int
    campaigns_started: int


@dataclass
class PilotResult:
    """Everything the analysis layer consumes."""

    config: ScenarioConfig
    system: TripwireSystem
    campaign: RegistrationCampaign
    monitor: CompromiseMonitor
    estimates: list[CategoryEstimate]
    breaches: list[GroundTruthBreach]
    checker: CredentialChecker
    monetizer: Monetizer
    disclosure: DisclosureCoordinator
    reregistration_hosts: list[str] = field(default_factory=list)

    @property
    def detected_hosts(self) -> set[str]:
        """Sites the monitor flagged."""
        return set(self.monitor.detections)

    @property
    def breached_hosts(self) -> set[str]:
        """Sites actually breached (ground truth)."""
        return {b.event.site_host for b in self.breaches}


class PilotScenario:
    """Builds and executes one pilot run."""

    def __init__(self, config: ScenarioConfig | None = None):
        self.config = config or ScenarioConfig()
        cfg = self.config
        self._install_family_overrides(cfg)
        self.system = TripwireSystem(
            seed=cfg.seed,
            population_size=cfg.population_size,
            retention_days=cfg.retention_days,
            generator_config=cfg.generator_config,
            crawler_config=cfg.crawler_config,
            site_overrides=cfg.site_overrides or None,
            fault_plan=cfg.fault_plan,
            obs_enabled=cfg.obs_enabled,
        )
        self._rng = self.system.tree.child("scenario").rng()
        self.campaign = RegistrationCampaign(self.system, policy=cfg.registration_policy)
        self.monitor = CompromiseMonitor(
            self.system.pool, self.system.control_locals, self.system.provider.domain
        )
        self._dump_ingestion = DumpIngestion(self.system, self.monitor)
        self.botnet = BotnetProxyNetwork(
            self.system.whois, self.system.tree.child("botnet").rng()
        )
        self.monetizer = Monetizer(
            self.system.provider, self.system.tree.child("monetizer").rng(),
            obs=self.system.obs,
        )
        self.checker = CredentialChecker(
            self.system.provider,
            self.botnet,
            self.system.queue,
            self.system.tree.child("checker").rng(),
            monetizer=self.monetizer,
            test_fraction=cfg.test_fraction,
            avoided_domains=frozenset(cfg.avoided_domains),
            horizon=cfg.end,
        )
        self.disclosure = DisclosureCoordinator(
            self.system.dns, self.system.tree.child("disclosure").rng()
        )
        self.breaches: list[GroundTruthBreach] = []
        self.reregistration_hosts: list[str] = []
        self._breach_targets: set[str] = set()
        self._executed_breach_hosts: set[str] = set()
        self._scheduled_breaches = 0
        self._hard_exposing_scheduled = 0
        self._easy_only_scheduled_count = 0

    # -- main entry point --------------------------------------------------------

    def run(self) -> PilotResult:
        """Execute the full pilot and return the result bundle."""
        cfg = self.config
        system = self.system

        self._provision_identities()
        self._schedule_dumps()
        self._schedule_control_logins()

        # December 2014: seed crawl (Alexa + Quantcast merged, §5.1).
        self._advance_to(SEED_CRAWL_START)
        seed_list = self._merged_seed_list()
        self.campaign.run_batch(seed_list)

        # January–March 2015: the main crawl.
        self._advance_to(MAIN_CRAWL_START)
        self.campaign.run_batch(system.population.alexa_top(cfg.main_crawl_top))
        wave1 = max(1, int(round(cfg.breach_count * 0.63))) if cfg.breach_count else 0
        self._schedule_breach_wave(
            count=wave1,
            window=(instant_from_date(2015, 4, 10), instant_from_date(2016, 2, 1)),
        )

        # November 2015: the wider sweep.
        self._advance_to(TOP30K_CRAWL_START)
        self.campaign.run_batch(system.population.alexa_top(cfg.second_crawl_top))
        self._schedule_breach_wave(
            count=cfg.breach_count - self._scheduled_breaches,
            window=(instant_from_date(2016, 1, 15), instant_from_date(2016, 11, 15)),
        )

        # May 2016: manual top-list registrations + re-registration at
        # already-detected sites (§6.1.4).
        self._advance_to(MANUAL_CRAWL_START)
        for entry in system.population.alexa_top(cfg.manual_top):
            self.campaign.manual_register(entry)
        self._reregister_detected()

        # September / November 2016: disclosures.
        self._advance_to(instant_from_date(2016, 9, 7))
        self._disclose_detected()
        self._advance_to(instant_from_date(2016, 11, 4))
        self._disclose_detected()

        # Run out the clock; the final dump lands at the end date.
        system.queue.run_until(cfg.end)
        # Late detections (sites tripped after the November batch) are
        # disclosed at the end of the observation window.
        self._disclose_detected()

        estimator = SuccessEstimator(system)
        estimates = estimator.estimate(self.campaign.exposed_attempts())
        return PilotResult(
            config=cfg,
            system=system,
            campaign=self.campaign,
            monitor=self.monitor,
            estimates=estimates,
            breaches=self.breaches,
            checker=self.checker,
            monetizer=self.monetizer,
            disclosure=self.disclosure,
            reregistration_hosts=self.reregistration_hosts,
        )

    # -- setup helpers ----------------------------------------------------------------

    @staticmethod
    def _install_family_overrides(cfg: ScenarioConfig) -> None:
        """Pin shared-backend site pairs into the population (sites E/F).

        Each family is two adjacent ranks inside the crawled prefix with
        identical hosting company characteristics and one registration
        backend; a breach of either exposes both.
        """
        from repro.web.spec import (
            BotCheck as _BotCheck,
            LinkPlacement as _LinkPlacement,
            RegistrationStyle as _RegistrationStyle,
            ResponseStyle as _ResponseStyle,
        )

        for index in range(cfg.site_family_count):
            base_rank = max(5, cfg.main_crawl_top // 3) + 2 * index
            family = f"gamecorp-{index}"
            for offset in range(2):
                rank = base_rank + offset
                if rank > cfg.population_size:
                    continue
                cfg.site_overrides.setdefault(rank, {}).update({
                    "bucket": "rest",
                    "language": "en",
                    "load_fails": False,
                    "category": "Gaming",
                    "registration_style": _RegistrationStyle.SIMPLE,
                    "link_placement": _LinkPlacement.PROMINENT,
                    "anchor_text": "Sign up",
                    "registration_path": "/signup",
                    "bot_check": _BotCheck.NONE,
                    "response_style": _ResponseStyle.CLEAR,
                    "extra_unlabeled_field": False,
                    "requires_special_char": False,
                    "shadow_ban_rate": 0.0,
                    "max_email_length": None,
                    "max_username_length": None,
                    "password_storage": "salted_hash",
                    "site_brute_force_protection": False,  # like E/F (§6.3.5)
                    "lists_usernames_publicly": True,  # like E/F (§6.3.5)
                    "backend_family": family,
                })

    def _provision_identities(self) -> None:
        cfg = self.config
        expected_attempts = (
            2 * cfg.seed_list_size + cfg.main_crawl_top + cfg.second_crawl_top
        )
        hard_needed = int(expected_attempts * 0.9) + 50
        easy_needed = int(expected_attempts * 0.5) + cfg.manual_top + 50
        self.system.provision_identities(hard_needed, PasswordClass.HARD)
        self.system.provision_identities(easy_needed, PasswordClass.EASY)
        # The unused honeypot block: provisioned, never registered.
        half = cfg.unused_account_count // 2
        self.system.provision_identities(half, PasswordClass.HARD)
        self.system.provision_identities(cfg.unused_account_count - half, PasswordClass.EASY)
        self.system.provision_control_accounts(cfg.control_account_count)

    def _schedule_dumps(self) -> None:
        # Sporadic one-shot dump dates; the shared DumpIngestion step
        # (also driven recurrently by service mode) does the collection
        # and handles fault-postponed hand-offs.
        for when in self.config.default_dump_dates():
            self.system.queue.schedule(when, "provider-dump", self._dump_ingestion)

    def _schedule_control_logins(self) -> None:
        cursor = SEED_CRAWL_START
        while cursor < self.config.end:
            self.system.queue.schedule(
                cursor, "control-logins", self.system.login_control_accounts
            )
            cursor += 30 * DAY

    def _merged_seed_list(self):
        cfg = self.config
        alexa = self.system.population.alexa_top(cfg.seed_list_size)
        quantcast = self.system.population.quantcast_top(cfg.seed_list_size)
        seen = set()
        merged = []
        for entry in alexa + quantcast:
            if entry.host in seen:
                continue
            seen.add(entry.host)
            merged.append(entry)
        return merged

    def _advance_to(self, when: SimInstant) -> None:
        self.system.queue.run_until(when)

    # -- breaches -------------------------------------------------------------------

    def _sites_with_accounts(self) -> list[Website]:
        """Instantiated sites holding at least one Tripwire account."""
        provider_domain = self.system.provider.domain
        sites = []
        for site in self.system.population.instantiated_sites():
            if any(
                a.email.endswith(f"@{provider_domain}")
                for a in site.accounts.all_accounts()
            ):
                sites.append(site)
        return sites

    def _classify_candidates(self) -> dict[str, list[Website]]:
        """Candidate pools for the breach mix (Table 2's structure)."""
        provider_domain = f"@{self.system.provider.domain}"
        pools: dict[str, list[Website]] = {"hard": [], "hashed": [], "easy_only": []}
        for site in self._sites_with_accounts():
            if site.spec.host in self._breach_targets:
                continue
            tripwire = [
                a for a in site.accounts.all_accounts() if a.email.endswith(provider_domain)
            ]
            classes = {self._password_class_of(a) for a in tripwire}
            has_hard = PasswordClass.HARD in classes
            has_easy = PasswordClass.EASY in classes
            if has_easy and not has_hard:
                pools["easy_only"].append(site)
            if has_hard:
                pools["hard"].append(site)
            if has_easy:
                pools["hashed"].append(site)
        return pools

    def _password_class_of(self, account) -> PasswordClass | None:
        identity = self.system.pool.identity_for_email(account.email)
        return identity.password_class if identity is not None else None

    def _schedule_breach_wave(self, count: int, window: tuple[SimInstant, SimInstant]) -> None:
        if count <= 0:
            return
        cfg = self.config
        pools = self._classify_candidates()
        rng = self._rng
        targets: list[tuple[Website, BreachMethod]] = []

        def reserve(site: Website) -> None:
            """Claim a target — and its whole backend family, since the
            breach event will pull the siblings in at the same time."""
            self._breach_targets.add(site.spec.host)
            family = site.spec.backend_family
            if family is None:
                return
            for sibling in self.system.population.instantiated_sites():
                if sibling.spec.backend_family == family:
                    self._breach_targets.add(sibling.spec.host)

        def take(pool: list[Website]) -> Website | None:
            candidates = [s for s in pool if s.spec.host not in self._breach_targets]
            if not candidates:
                return None
            site = rng.choice(candidates)
            reserve(site)
            return site

        # A shared-backend family member goes first when available, so
        # the E/F phenomenon (one breach, two detected sites) appears.
        family_candidates = [
            s for s in pools["hashed"] + pools["hard"]
            if s.spec.backend_family and s.spec.host not in self._breach_targets
        ]
        if family_candidates and len(targets) < count:
            site = family_candidates[0]
            reserve(site)
            targets.append((site, BreachMethod.DB_DUMP))

        hard_quota = min(
            max(0, cfg.breach_hard_exposing - self._hard_exposing_scheduled),
            max(0, count - len(targets)),
        )
        for _ in range(hard_quota):
            site = take(pools["hard"])
            if site is None:
                break
            storage = PasswordStorage(site.spec.password_storage)
            method = (
                BreachMethod.DB_DUMP
                if storage.exposes_all_passwords
                else BreachMethod.ONLINE_CAPTURE
            )
            targets.append((site, method))
            self._hard_exposing_scheduled += 1

        easy_only_quota = max(0, cfg.breach_easy_only_site - self._easy_only_scheduled_count)
        for _ in range(max(0, min(easy_only_quota, count - len(targets)))):
            site = take(pools["easy_only"])
            if site is None:
                break
            targets.append((site, BreachMethod.DB_DUMP))
            self._easy_only_scheduled_count += 1

        while len(targets) < count:
            site = take(pools["hashed"])
            if site is None:
                break
            # A database dump: hashed storage protects hard passwords,
            # reversible storage does not (site A's situation).
            targets.append((site, BreachMethod.DB_DUMP))

        for site, method in targets:
            when = rng.randrange(window[0], window[1])
            shards = None
            if site.spec.shard_count > 1 and rng.random() < 0.5:
                exposed = rng.sample(
                    range(site.spec.shard_count), max(1, site.spec.shard_count // 2)
                )
                shards = frozenset(exposed)
            event = BreachEvent(
                site_host=site.spec.host, time=when, method=method, exposed_shards=shards
            )
            self._scheduled_breaches += 1
            self.system.queue.schedule(
                when, f"breach:{site.spec.host}", lambda e=event, s=site: self._execute_breach(s, e)
            )

    def _execute_breach(self, site: Website, event: BreachEvent) -> None:
        profile = draw_profile(self._rng)
        self._breach_one(site, event, profile)
        # A shared registration backend (sites E/F) means one breach
        # exposes every family member, checked with the same loosely
        # coupled machinery — hence the temporally aligned logins the
        # paper observed (§6.4.1).
        family = site.spec.backend_family
        if family is None:
            return
        for sibling in self.system.population.instantiated_sites():
            if sibling.spec.backend_family != family:
                continue
            if sibling.spec.host == site.spec.host:
                continue
            if sibling.spec.host in self._executed_breach_hosts:
                continue
            self._breach_targets.add(sibling.spec.host)
            sibling_event = BreachEvent(
                site_host=sibling.spec.host, time=event.time, method=event.method
            )
            self._breach_one(sibling, sibling_event, profile)

    def _breach_one(self, site: Website, event: BreachEvent, profile) -> None:
        cfg = self.config
        self._executed_breach_hosts.add(site.spec.host)
        site.seed_organic_accounts(self._rng.randint(*cfg.organic_accounts_range))
        stolen = execute_breach(site, event, obs=self.system.obs)
        cracked = crack_records(stolen, event.time)
        started = self.checker.launch(cracked, profile)
        self.breaches.append(
            GroundTruthBreach(
                event=event,
                stolen_count=len(stolen),
                cracked_count=len(cracked),
                campaigns_started=started,
            )
        )

    # -- re-registration and disclosure ------------------------------------------------

    def _reregister_detected(self) -> None:
        from repro.core.campaign import AttemptRecord
        from repro.web.population import RankedSite

        for host in sorted(self.monitor.detections):
            rank = self.system.population.rank_of_host(host)
            if rank is None:
                continue
            spec = self.system.population.spec_at_rank(rank)
            entry = RankedSite(rank=rank, host=host, url=f"http://{spec.host}/")
            identity = self.system.pool.checkout_any(host, PasswordClass.HARD)
            if identity is None:
                continue
            started = self.system.clock.now()
            self.system.mail_server.expect_registration(
                identity.email_local, host, started
            )
            outcome = self.system.crawler.register_at(entry.url, identity)
            if outcome.exposed_credentials:
                self.system.pool.burn(identity.identity_id)
            else:
                self.system.pool.release(identity.identity_id)
            # Recorded in the campaign ledger so the §6.1.4 recovery
            # analysis can track each fresh account's fate.
            self.campaign.record_external_attempt(
                AttemptRecord(
                    site_host=host,
                    rank=rank,
                    url=entry.url,
                    identity=identity,
                    password_class=PasswordClass.HARD,
                    outcome=outcome,
                    registered_at=started,
                )
            )
            self.reregistration_hosts.append(host)
        self._maybe_schedule_rebreach()

    def _maybe_schedule_rebreach(self) -> None:
        """§6.1.4: most sites recover, but one (site H) was breached
        again and its fresh account accessed."""
        cfg = self.config
        if not cfg.rebreach_one_site or not self.reregistration_hosts:
            return
        # Prefer a site whose fresh account actually exists, so the
        # re-breach has a honey account to expose (site H's situation).
        candidates = []
        for attempt in self.campaign.attempts:
            if attempt.site_host not in self.reregistration_hosts:
                continue
            if attempt.registered_at < MANUAL_CRAWL_START:
                continue  # an original (pre-detection) registration
            site = self.system.population.site_by_host(attempt.site_host)
            if site and site.accounts.lookup(attempt.identity.email_address):
                candidates.append(attempt.site_host)
        pool = sorted(set(candidates)) or sorted(self.reregistration_hosts)
        host = self._rng.choice(pool)
        site = self.system.population.site_by_host(host)
        if site is None:
            return
        latest = cfg.end - 45 * DAY
        earliest = self.system.clock.now() + 30 * DAY
        if earliest >= latest:
            return
        when = self._rng.randrange(earliest, latest)
        event = BreachEvent(site_host=host, time=when,
                            method=BreachMethod.ONLINE_CAPTURE)
        self.system.queue.schedule(
            when, f"rebreach:{host}", lambda: self._execute_breach(site, event)
        )

    def _disclose_detected(self) -> None:
        now = self.system.clock.now()
        already = {r.site_host for r in self.disclosure.records}
        for host in sorted(self.monitor.detections):
            if host in already:
                continue
            self.disclosure.disclose(host, now)
