"""Sharded, deterministically-mergeable campaign execution.

The paper's pilot crawled ~2,300 sites serially; scaling to millions
needs independent per-site work units fanned out over workers.  A
:class:`CampaignRunner` partitions a ranked site list into N shards,
executes each shard's registration campaign on its own private world
(substrate + apparatus, see :mod:`repro.core.substrate` and
:mod:`repro.core.apparatus`), then merges attempts and telemetry back
in the original list order.

Determinism contract
--------------------

Each shard is a pure function of ``(seed, shard_index, shard sites,
configs)``: the shard builds a fresh :class:`TripwireSystem` whose
substrate tree is the root seed (so site specs are identical across
shards and runs) and whose apparatus tree is namespaced
``("shard", shard_index)`` (so shards mint distinct identities and
crawl with independent error streams).  No state is shared between
shards, so executing them serially, on a thread pool, or on a process
pool yields **bit-identical merged results for any worker count**.
The merge is keyed on each site's position in the input list, never on
completion order.

Fault injection preserves the contract: a :class:`FaultPlan` rides in
the picklable :class:`ShardPlan`, each shard derives its injector RNG
streams from its own (seed, shard_index, plan.seed) and fills a private
:class:`~repro.faults.report.FaultReport`; reports merge by summation
in shard-index order.  With any plan and a fixed seed, the merged
output — attempts, telemetry *and* fault report — is bit-identical for
any worker count and executor.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field

from repro.core.campaign import AttemptRecord, CampaignStats, RegistrationCampaign, RegistrationPolicy
from repro.core.system import TripwireSystem
from repro.crawler.engine import CrawlerConfig
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityState
from repro.obs.journal import RunJournal, ShardObservation
from repro.obs.merge import fold_shard_ordered, sum_counter_dataclasses
from repro.util.timeutil import STUDY_START, SimInstant
from repro.web.generator import GeneratorConfig
from repro.web.population import RankedSite

#: Executor backends accepted by :class:`CampaignRunner`.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ShardPlan:
    """Everything a worker needs to run one shard, picklable.

    ``positions`` carries each site's index in the original ranked
    list; the merge is keyed on it, which is what makes the merged
    output independent of shard completion order.
    """

    shard_index: int
    shard_count: int
    seed: int
    population_size: int
    sites: tuple[RankedSite, ...]
    positions: tuple[int, ...]
    policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST
    start: SimInstant = STUDY_START
    generator_config: GeneratorConfig | None = None
    crawler_config: CrawlerConfig | None = None
    site_overrides: tuple[tuple[int, tuple[tuple[str, object], ...]], ...] = ()
    identity_headroom: int = 8
    fault_plan: FaultPlan | None = None
    obs_enabled: bool = False


@dataclass(frozen=True)
class ShardTelemetry:
    """Deterministic per-shard counters, merged by summation."""

    transport_requests: int = 0
    mail_stored: int = 0
    verification_pages_fetched: int = 0
    identities_provisioned: int = 0
    identities_burned: int = 0
    pages_loaded: int = 0
    sim_seconds_elapsed: int = 0

    def merged_with(self, other: "ShardTelemetry") -> "ShardTelemetry":
        return sum_counter_dataclasses(ShardTelemetry, (self, other))


@dataclass
class ShardResult:
    """One shard's output: attempts grouped per input-list position."""

    shard_index: int
    site_attempts: list[tuple[int, list[AttemptRecord]]]
    stats: CampaignStats
    telemetry: ShardTelemetry
    fault_report: FaultReport = field(default_factory=FaultReport)
    observation: ShardObservation | None = None


@dataclass
class CampaignRunResult:
    """Merged output of a sharded campaign run."""

    attempts: list[AttemptRecord]
    stats: CampaignStats
    telemetry: ShardTelemetry
    shard_results: list[ShardResult]
    wall_seconds: float
    workers: int
    shards: int
    executor: str
    fault_report: FaultReport = field(default_factory=FaultReport)
    #: Present when the run was observed (``obs_enabled``).  The
    #: journal's meta deliberately excludes workers/executor/wall time
    #: so its serialized bytes are identical for any worker count.
    journal: RunJournal | None = None

    def exposed_attempts(self) -> list[AttemptRecord]:
        """Attempts where an identity was burned."""
        return [a for a in self.attempts if a.exposed]


def partition_sites(
    sites: list[RankedSite], shards: int
) -> list[tuple[tuple[RankedSite, ...], tuple[int, ...]]]:
    """Round-robin the list into ``shards`` (sites, positions) slices.

    Round-robin keeps shard loads even when eligibility correlates
    with rank (it does: top-ranked sites are crawled more heavily).
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    buckets: list[list[RankedSite]] = [[] for _ in range(shards)]
    positions: list[list[int]] = [[] for _ in range(shards)]
    for index, entry in enumerate(sites):
        buckets[index % shards].append(entry)
        positions[index % shards].append(index)
    return [
        (tuple(bucket), tuple(pos)) for bucket, pos in zip(buckets, positions)
    ]


def _overrides_to_dict(
    packed: tuple[tuple[int, tuple[tuple[str, object], ...]], ...],
) -> dict[int, dict[str, object]] | None:
    if not packed:
        return None
    return {rank: dict(items) for rank, items in packed}


def pack_overrides(
    overrides: dict[int, dict[str, object]] | None,
) -> tuple[tuple[int, tuple[tuple[str, object], ...]], ...]:
    """Freeze a site-override mapping into a hashable, picklable form."""
    if not overrides:
        return ()
    return tuple(
        (rank, tuple(sorted(items.items())))
        for rank, items in sorted(overrides.items())
    )


def run_shard(plan: ShardPlan) -> ShardResult:
    """Execute one shard's campaign on a private world.

    Top-level (not a closure) so the process-pool backend can pickle
    it.  Identity provisioning is sized from the shard's site count:
    every site may take a hard attempt, a follow-up easy attempt and
    an occasional second hard attempt.
    """
    system = TripwireSystem(
        seed=plan.seed,
        population_size=plan.population_size,
        start=plan.start,
        generator_config=plan.generator_config,
        crawler_config=plan.crawler_config,
        site_overrides=_overrides_to_dict(plan.site_overrides),
        apparatus_namespace=("shard", plan.shard_index),
        fault_plan=plan.fault_plan,
        obs_enabled=plan.obs_enabled,
    )
    hard_needed = 2 * len(plan.sites) + plan.identity_headroom
    easy_needed = len(plan.sites) + plan.identity_headroom
    provisioned = system.provision_identities(hard_needed, PasswordClass.HARD)
    provisioned += system.provision_identities(easy_needed, PasswordClass.EASY)

    campaign = RegistrationCampaign(system, policy=plan.policy)
    site_attempts: list[tuple[int, list[AttemptRecord]]] = []
    with system.obs.span("shard.execute", shard=plan.shard_index, sites=len(plan.sites)):
        for position, entry in zip(plan.positions, plan.sites):
            before = len(campaign.attempts)
            campaign.run_batch([entry])
            site_attempts.append((position, campaign.attempts[before:]))

    burned = system.pool.count_by_state()[IdentityState.BURNED]
    telemetry = ShardTelemetry(
        transport_requests=system.transport.request_count,
        mail_stored=system.mail_server.stored_count,
        verification_pages_fetched=len(system.mail_server.saved_pages),
        identities_provisioned=provisioned,
        identities_burned=burned,
        pages_loaded=sum(a.outcome.pages_loaded for a in campaign.attempts),
        sim_seconds_elapsed=system.clock.now() - plan.start,
    )
    observation = (
        ShardObservation.capture(system.obs, plan.shard_index)
        if plan.obs_enabled
        else None
    )
    return ShardResult(
        shard_index=plan.shard_index,
        site_attempts=site_attempts,
        stats=campaign.stats,
        telemetry=telemetry,
        fault_report=system.fault_report,
        observation=observation,
    )


def merge_shard_results(results: list[ShardResult]) -> tuple[
    list[AttemptRecord], CampaignStats, ShardTelemetry, FaultReport
]:
    """Merge shard outputs in input-list order (deterministic).

    Attempts come back ordered by each site's position in the original
    ranked list, with per-site attempt order preserved; stats,
    telemetry and fault reports merge by summation in shard-index
    order.  The result is invariant to the order ``results`` arrives
    in.
    """
    indexed: list[tuple[int, list[AttemptRecord]]] = []
    for result in results:
        indexed.extend(result.site_attempts)
    indexed.sort(key=lambda pair: pair[0])
    attempts = [record for _position, group in indexed for record in group]

    ordered = fold_shard_ordered(
        results,
        index_of=lambda r: r.shard_index,
        fold=lambda acc, r: acc + [r],
        initial=[],
    )
    stats = sum_counter_dataclasses(CampaignStats, (r.stats for r in ordered))
    telemetry = sum_counter_dataclasses(
        ShardTelemetry, (r.telemetry for r in ordered)
    )
    fault_report = sum_counter_dataclasses(
        FaultReport, (r.fault_report for r in ordered)
    )
    return attempts, stats, telemetry, fault_report


class CampaignRunner:
    """Partition, fan out, merge — the production campaign surface.

    ``executor`` picks the backend: ``"serial"`` (the baseline the
    parallel backends must match bit-for-bit), ``"thread"``
    (I/O-bound friendly; bounded by the GIL for this pure-Python
    workload) or ``"process"`` (true parallelism; shards rebuild their
    worlds in the worker process from the picklable plan).
    """

    def __init__(
        self,
        seed: int = 7,
        population_size: int = 30000,
        shards: int = 1,
        workers: int = 1,
        executor: str = "serial",
        policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST,
        start: SimInstant = STUDY_START,
        generator_config: GeneratorConfig | None = None,
        crawler_config: CrawlerConfig | None = None,
        site_overrides: dict[int, dict[str, object]] | None = None,
        identity_headroom: int = 8,
        fault_plan: FaultPlan | None = None,
        obs_enabled: bool = False,
        obs_meta: dict | None = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if shards < 1:
            raise ValueError("shards must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.seed = seed
        self.population_size = population_size
        self.shards = shards
        self.workers = workers
        self.executor = executor
        self.policy = policy
        self.start = start
        self.generator_config = generator_config
        self.crawler_config = crawler_config
        self.site_overrides = site_overrides
        self.identity_headroom = identity_headroom
        self.fault_plan = fault_plan
        self.obs_enabled = obs_enabled
        #: Extra journal-header fields (e.g. the CLI command).  Must
        #: never include worker counts, executor names or wall-clock
        #: values — they would break journal byte-identity.
        self.obs_meta = dict(obs_meta) if obs_meta else {}

    # -- planning -----------------------------------------------------------

    def plan(self, sites: list[RankedSite]) -> list[ShardPlan]:
        """The shard plans for a ranked list (empty shards dropped)."""
        packed = pack_overrides(self.site_overrides)
        plans = []
        for index, (bucket, positions) in enumerate(partition_sites(sites, self.shards)):
            if not bucket:
                continue
            plans.append(
                ShardPlan(
                    shard_index=index,
                    shard_count=self.shards,
                    seed=self.seed,
                    population_size=self.population_size,
                    sites=bucket,
                    positions=positions,
                    policy=self.policy,
                    start=self.start,
                    generator_config=self.generator_config,
                    crawler_config=self.crawler_config,
                    site_overrides=packed,
                    identity_headroom=self.identity_headroom,
                    fault_plan=self.fault_plan,
                    obs_enabled=self.obs_enabled,
                )
            )
        return plans

    # -- execution ----------------------------------------------------------

    def run(self, sites: list[RankedSite]) -> CampaignRunResult:
        """Execute the sharded campaign over a ranked list."""
        plans = self.plan(sites)
        began = time.perf_counter()
        if self.executor == "serial" or self.workers == 1 or len(plans) <= 1:
            shard_results = [run_shard(plan) for plan in plans]
        else:
            shard_results = self._run_pooled(plans)
        wall = time.perf_counter() - began
        attempts, stats, telemetry, fault_report = merge_shard_results(shard_results)
        journal = self._build_journal(sites, shard_results) if self.obs_enabled else None
        return CampaignRunResult(
            attempts=attempts,
            stats=stats,
            telemetry=telemetry,
            shard_results=sorted(shard_results, key=lambda r: r.shard_index),
            wall_seconds=wall,
            workers=self.workers,
            shards=self.shards,
            executor=self.executor,
            fault_report=fault_report,
            journal=journal,
        )

    def _build_journal(
        self, sites: list[RankedSite], shard_results: list[ShardResult]
    ) -> RunJournal:
        """The run journal for an observed run.

        Meta holds only worker-count-invariant facts — a journal from a
        4-worker process-pool run must byte-match the serial one.
        """
        meta = {
            "seed": self.seed,
            "population": self.population_size,
            "shards": self.shards,
            "sites": len(sites),
            "policy": self.policy.value,
            "fault_profile": self.fault_plan.profile if self.fault_plan else "off",
            "fault_seed": self.fault_plan.seed if self.fault_plan else 0,
            **self.obs_meta,
        }
        captures = [
            r.observation for r in shard_results if r.observation is not None
        ]
        return RunJournal(meta, captures)

    def _run_pooled(self, plans: list[ShardPlan]) -> list[ShardResult]:
        pool_cls = (
            concurrent.futures.ThreadPoolExecutor
            if self.executor == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        with pool_cls(max_workers=self.workers) as pool:
            return list(pool.map(run_shard, plans))
