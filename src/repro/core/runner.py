"""Sharded, deterministically-mergeable campaign execution.

The paper's pilot crawled ~2,300 sites serially; scaling to millions
needs independent per-site work units fanned out over workers.  A
:class:`CampaignRunner` partitions a ranked site list into N shards,
executes each shard's registration campaign on its own private world
(substrate + apparatus, see :mod:`repro.core.substrate` and
:mod:`repro.core.apparatus`), then merges attempts and telemetry back
in the original list order.

Determinism contract
--------------------

Each shard is a pure function of ``(seed, shard_index, shard sites,
configs)``: the shard builds a fresh :class:`TripwireSystem` whose
substrate tree is the root seed (so site specs are identical across
shards and runs) and whose apparatus tree is namespaced
``("shard", shard_index)`` (so shards mint distinct identities and
crawl with independent error streams).  No state is shared between
shards, so executing them serially, on a thread pool, or on a process
pool yields **bit-identical merged results for any worker count**.
The merge is keyed on each site's position in the input list, never on
completion order.

Fault injection preserves the contract: a :class:`FaultPlan` rides in
the picklable :class:`ShardPlan`, each shard derives its injector RNG
streams from its own (seed, shard_index, plan.seed) and fills a private
:class:`~repro.faults.report.FaultReport`; reports merge by summation
in shard-index order.  With any plan and a fixed seed, the merged
output — attempts, telemetry *and* fault report — is bit-identical for
any worker count and executor.

Scale-out layer (PR 5)
----------------------

Three orthogonal optimizations ride on top, none of which may move a
bit of merged output:

- **Warm workers** (:mod:`repro.perf.warm`): shard-invariant substrate
  products (site specs, identity corpora) are cached for the worker
  process's lifetime, so a persistent pool builds each world once per
  worker instead of once per shard.  ``warm_enabled`` rides in the
  plan; the cold path survives as the reference.
- **Wire codec** (:mod:`repro.perf.wire`): the process backend ships
  each shard result as one compact interned-tuple blob instead of a
  default-pickled object graph; per-shard bytes-on-wire are recorded
  on the run result (never in the journal — they are executor-shaped).
- **Streaming merge**: shard results fold into a
  :class:`ShardResultMerger` as they complete instead of waiting on a
  ``pool.map`` barrier, so the merge is overlapped with the slowest
  shard and a worker failure surfaces immediately.  The fold is
  position-keyed, so arrival order still cannot affect output.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field

from repro.core.campaign import AttemptRecord, CampaignStats, RegistrationCampaign, RegistrationPolicy
from repro.core.system import TripwireSystem
from repro.crawler.engine import CrawlerConfig
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityState
from repro.obs.journal import RunJournal, ShardObservation
from repro.obs.merge import collect_shard_ordered, sum_counter_dataclasses
from repro.perf import warm as _warm
from repro.perf import wire as _wire
from repro.util.timeutil import STUDY_START, SimInstant
from repro.web.generator import GeneratorConfig
from repro.web.population import RankedSite

#: Executor backends accepted by :class:`CampaignRunner`.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ShardPlan:
    """Everything a worker needs to run one shard, picklable.

    ``positions`` carries each site's index in the original ranked
    list; the merge is keyed on it, which is what makes the merged
    output independent of shard completion order.
    """

    shard_index: int
    shard_count: int
    seed: int
    population_size: int
    sites: tuple[RankedSite, ...]
    positions: tuple[int, ...]
    policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST
    start: SimInstant = STUDY_START
    generator_config: GeneratorConfig | None = None
    crawler_config: CrawlerConfig | None = None
    site_overrides: tuple[tuple[int, tuple[tuple[str, object], ...]], ...] = ()
    identity_headroom: int = 8
    fault_plan: FaultPlan | None = None
    obs_enabled: bool = False
    #: Opt-in to the per-worker warm world cache.  Off by default so a
    #: bare ``run_shard(plan)`` is always the cold reference path.
    warm_enabled: bool = False
    #: Path of a built :mod:`repro.store` world store, or None for the
    #: in-memory default.  Execution-shaped like ``warm_enabled``: the
    #: store holds the same prefix-closed specs the generator would
    #: produce, so toggling it moves no bit of merged output (the
    #: store≡memory determinism matrix pins this).
    world_store: str | None = None
    #: Scheduler epoch this shard belongs to (service mode).  Epoch 0
    #: keeps the pre-service apparatus namespace ``("shard", k)`` so
    #: one-shot campaigns are byte-identical to earlier releases; later
    #: epochs namespace ``("epoch", e, "shard", k)`` so each epoch's
    #: shards mint distinct identities and error streams.
    epoch: int = 0


@dataclass(frozen=True)
class ShardTelemetry:
    """Deterministic per-shard counters, merged by summation."""

    transport_requests: int = 0
    mail_stored: int = 0
    verification_pages_fetched: int = 0
    identities_provisioned: int = 0
    identities_burned: int = 0
    pages_loaded: int = 0
    sim_seconds_elapsed: int = 0

    def merged_with(self, other: "ShardTelemetry") -> "ShardTelemetry":
        return sum_counter_dataclasses(ShardTelemetry, (self, other))


@dataclass
class ShardResult:
    """One shard's output: attempts grouped per input-list position."""

    shard_index: int
    site_attempts: list[tuple[int, list[AttemptRecord]]]
    stats: CampaignStats
    telemetry: ShardTelemetry
    fault_report: FaultReport = field(default_factory=FaultReport)
    observation: ShardObservation | None = None


@dataclass
class CampaignRunResult:
    """Merged output of a sharded campaign run."""

    attempts: list[AttemptRecord]
    stats: CampaignStats
    telemetry: ShardTelemetry
    shard_results: list[ShardResult]
    wall_seconds: float
    workers: int
    shards: int
    executor: str
    fault_report: FaultReport = field(default_factory=FaultReport)
    #: Present when the run was observed (``obs_enabled``).  The
    #: journal's meta deliberately excludes workers/executor/wall time
    #: so its serialized bytes are identical for any worker count.
    journal: RunJournal | None = None
    #: Bytes-on-wire per shard index when the process backend shipped
    #: results through the compact codec; empty otherwise.  Lives here,
    #: not in the journal — it is executor-shaped operational data.
    wire_bytes: dict[int, int] = field(default_factory=dict)

    def exposed_attempts(self) -> list[AttemptRecord]:
        """Attempts where an identity was burned."""
        return [a for a in self.attempts if a.exposed]


def partition_sites(
    sites: list[RankedSite], shards: int
) -> list[tuple[tuple[RankedSite, ...], tuple[int, ...]]]:
    """Round-robin the list into ``shards`` (sites, positions) slices.

    Round-robin keeps shard loads even when eligibility correlates
    with rank (it does: top-ranked sites are crawled more heavily).
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    buckets: list[list[RankedSite]] = [[] for _ in range(shards)]
    positions: list[list[int]] = [[] for _ in range(shards)]
    for index, entry in enumerate(sites):
        buckets[index % shards].append(entry)
        positions[index % shards].append(index)
    return [
        (tuple(bucket), tuple(pos)) for bucket, pos in zip(buckets, positions)
    ]


def _overrides_to_dict(
    packed: tuple[tuple[int, tuple[tuple[str, object], ...]], ...],
) -> dict[int, dict[str, object]] | None:
    if not packed:
        return None
    return {rank: dict(items) for rank, items in packed}


def pack_overrides(
    overrides: dict[int, dict[str, object]] | None,
) -> tuple[tuple[int, tuple[tuple[str, object], ...]], ...]:
    """Freeze a site-override mapping into a hashable, picklable form."""
    if not overrides:
        return ()
    return tuple(
        (rank, tuple(sorted(items.items())))
        for rank, items in sorted(overrides.items())
    )


def run_shard(plan: ShardPlan) -> ShardResult:
    """Execute one shard's campaign on a private world.

    Top-level (not a closure) so the process-pool backend can pickle
    it.  Identity provisioning is sized from the shard's site count:
    every site may take a hard attempt, a follow-up easy attempt and
    an occasional second hard attempt.

    With ``plan.warm_enabled`` (and the perf layer on), shard-invariant
    substrate products come from the worker-process-lifetime cache in
    :mod:`repro.perf.warm`; otherwise this is the cold reference path.
    Either way the result is bit-identical — the warm cache holds only
    pure functions of the plan's world key.
    """
    if plan.epoch == 0:
        namespace: tuple[object, ...] = ("shard", plan.shard_index)
    else:
        namespace = ("epoch", plan.epoch, "shard", plan.shard_index)
    spec_cache = None
    if plan.world_store is not None:
        from repro.store import open_world_store

        store = open_world_store(plan.world_store)
        store.require_world(
            plan.seed,
            plan.population_size,
            plan.generator_config,
            plan.site_overrides,
        )
        spec_cache = store.spec_cache()
    warm = _warm.world_for_plan(plan)
    system = TripwireSystem(
        seed=plan.seed,
        population_size=plan.population_size,
        start=plan.start,
        generator_config=plan.generator_config,
        crawler_config=plan.crawler_config,
        site_overrides=_overrides_to_dict(plan.site_overrides),
        apparatus_namespace=namespace,
        fault_plan=plan.fault_plan,
        obs_enabled=plan.obs_enabled,
        warm=warm,
        spec_cache=spec_cache,
    )
    hard_needed = 2 * len(plan.sites) + plan.identity_headroom
    easy_needed = len(plan.sites) + plan.identity_headroom
    if warm is not None:
        provisioned = warm.provision(system, hard_needed, easy_needed, namespace)
    else:
        provisioned = system.provision_identities(hard_needed, PasswordClass.HARD)
        provisioned += system.provision_identities(easy_needed, PasswordClass.EASY)

    campaign = RegistrationCampaign(system, policy=plan.policy)
    site_attempts: list[tuple[int, list[AttemptRecord]]] = []
    with system.obs.span("shard.execute", shard=plan.shard_index, sites=len(plan.sites)):
        for position, entry in zip(plan.positions, plan.sites):
            before = len(campaign.attempts)
            campaign.run_batch([entry])
            site_attempts.append((position, campaign.attempts[before:]))

    burned = system.pool.count_by_state()[IdentityState.BURNED]
    telemetry = ShardTelemetry(
        transport_requests=system.transport.request_count,
        mail_stored=system.mail_server.stored_count,
        verification_pages_fetched=len(system.mail_server.saved_pages),
        identities_provisioned=provisioned,
        identities_burned=burned,
        pages_loaded=sum(a.outcome.pages_loaded for a in campaign.attempts),
        sim_seconds_elapsed=system.clock.now() - plan.start,
    )
    observation = (
        ShardObservation.capture(system.obs, plan.shard_index)
        if plan.obs_enabled
        else None
    )
    return ShardResult(
        shard_index=plan.shard_index,
        site_attempts=site_attempts,
        stats=campaign.stats,
        telemetry=telemetry,
        fault_report=system.fault_report,
        observation=observation,
    )


def run_shard_wire(plan: ShardPlan) -> bytes:
    """Run a shard and ship its result as one compact wire blob.

    Top-level so the process backend can pickle it.  Encoding in the
    worker means the pool transfers a single ``bytes`` object; the
    parent decodes as results stream in, and ``len()`` of the blob is
    the shard's exact bytes-on-wire.
    """
    return _wire.encode_shard_bytes(run_shard(plan))


class ShardResultMerger:
    """Incremental position-keyed fold of shard results.

    Results are added in *completion* order as the executor yields
    them; :meth:`finish` produces output invariant to that order —
    attempts sort on each site's position in the original ranked list
    and counters fold in shard-index order.  Appending per-site groups
    as they arrive (rather than re-concatenating an accumulator per
    shard) keeps the merge linear in total attempt count.
    """

    def __init__(self):
        self._results: list[ShardResult] = []
        self._indexed: list[tuple[int, list[AttemptRecord]]] = []
        self._finished = False

    def add(self, result: ShardResult) -> None:
        """Fold in one shard's output (any order, exactly once each)."""
        if self._finished:
            raise RuntimeError("merger already finished")
        self._results.append(result)
        self._indexed.extend(result.site_attempts)

    @property
    def results(self) -> list[ShardResult]:
        """Shard results added so far, in shard-index order."""
        return collect_shard_ordered(self._results, index_of=lambda r: r.shard_index)

    def finish(self) -> tuple[
        list[AttemptRecord], CampaignStats, ShardTelemetry, FaultReport
    ]:
        """The merged (attempts, stats, telemetry, fault report)."""
        self._finished = True
        self._indexed.sort(key=lambda pair: pair[0])
        attempts = [record for _position, group in self._indexed for record in group]
        ordered = self.results
        stats = sum_counter_dataclasses(CampaignStats, (r.stats for r in ordered))
        telemetry = sum_counter_dataclasses(
            ShardTelemetry, (r.telemetry for r in ordered)
        )
        fault_report = sum_counter_dataclasses(
            FaultReport, (r.fault_report for r in ordered)
        )
        return attempts, stats, telemetry, fault_report


def merge_shard_results(results: list[ShardResult]) -> tuple[
    list[AttemptRecord], CampaignStats, ShardTelemetry, FaultReport
]:
    """Merge shard outputs in input-list order (deterministic).

    Attempts come back ordered by each site's position in the original
    ranked list, with per-site attempt order preserved; stats,
    telemetry and fault reports merge by summation in shard-index
    order.  The result is invariant to the order ``results`` arrives
    in.  (The batch wrapper over :class:`ShardResultMerger`, which the
    runner itself feeds incrementally.)
    """
    merger = ShardResultMerger()
    for result in results:
        merger.add(result)
    return merger.finish()


class CampaignRunner:
    """Partition, fan out, merge — the production campaign surface.

    ``executor`` picks the backend: ``"serial"`` (the baseline the
    parallel backends must match bit-for-bit), ``"thread"``
    (I/O-bound friendly; bounded by the GIL for this pure-Python
    workload) or ``"process"`` (true parallelism; shards rebuild their
    worlds in the worker process from the picklable plan).

    ``warm_workers`` opts shards into the per-worker world cache;
    ``wire_codec`` ships process-backend results through the compact
    codec; ``persistent_pool`` keeps the executor's pool alive across
    :meth:`run` calls so worker processes retain their warm caches
    (pair with :meth:`close`, or use the runner as a context manager).
    All three default to the fast path being available but change no
    output bit.
    """

    def __init__(
        self,
        seed: int = 7,
        population_size: int = 30000,
        shards: int = 1,
        workers: int = 1,
        executor: str = "serial",
        policy: RegistrationPolicy = RegistrationPolicy.HARD_FIRST,
        start: SimInstant = STUDY_START,
        generator_config: GeneratorConfig | None = None,
        crawler_config: CrawlerConfig | None = None,
        site_overrides: dict[int, dict[str, object]] | None = None,
        identity_headroom: int = 8,
        fault_plan: FaultPlan | None = None,
        obs_enabled: bool = False,
        obs_meta: dict | None = None,
        warm_workers: bool = True,
        wire_codec: bool = True,
        persistent_pool: bool = False,
        world_store: str | None = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if shards < 1:
            raise ValueError("shards must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.seed = seed
        self.population_size = population_size
        self.shards = shards
        self.workers = workers
        self.executor = executor
        self.policy = policy
        self.start = start
        self.generator_config = generator_config
        self.crawler_config = crawler_config
        self.site_overrides = site_overrides
        self.identity_headroom = identity_headroom
        self.fault_plan = fault_plan
        self.obs_enabled = obs_enabled
        #: Extra journal-header fields (e.g. the CLI command).  Must
        #: never include worker counts, executor names or wall-clock
        #: values — they would break journal byte-identity.
        self.obs_meta = dict(obs_meta) if obs_meta else {}
        self.warm_workers = warm_workers
        self.wire_codec = wire_codec
        self.persistent_pool = persistent_pool
        #: Execution-shaped, like ``workers``: never recorded in the
        #: journal meta, and must not change a bit of merged output.
        self.world_store = world_store
        self._pool: concurrent.futures.Executor | None = None

    # -- planning -----------------------------------------------------------

    def plan(
        self,
        sites: list[RankedSite],
        *,
        epoch: int = 0,
        start: SimInstant | None = None,
    ) -> list[ShardPlan]:
        """The shard plans for a ranked list (empty shards dropped).

        Planning is pure — no worlds are built, no pools touched — so a
        scheduler can plan every epoch up front and re-dispatch each
        epoch's plans through :meth:`execute` when its sim window
        opens.  ``epoch`` namespaces the shards (and offsets their
        indices by ``epoch * shards`` so a multi-epoch journal keeps
        globally unique shard slots); ``start`` overrides the sim
        instant the shard worlds open at (the epoch's window start).
        """
        packed = pack_overrides(self.site_overrides)
        plans = []
        base = epoch * self.shards
        for index, (bucket, positions) in enumerate(partition_sites(sites, self.shards)):
            if not bucket:
                continue
            plans.append(
                ShardPlan(
                    shard_index=base + index,
                    shard_count=self.shards,
                    seed=self.seed,
                    population_size=self.population_size,
                    sites=bucket,
                    positions=positions,
                    policy=self.policy,
                    start=self.start if start is None else start,
                    generator_config=self.generator_config,
                    crawler_config=self.crawler_config,
                    site_overrides=packed,
                    identity_headroom=self.identity_headroom,
                    fault_plan=self.fault_plan,
                    obs_enabled=self.obs_enabled,
                    warm_enabled=self.warm_workers,
                    world_store=self.world_store,
                    epoch=epoch,
                )
            )
        return plans

    # -- execution ----------------------------------------------------------

    def run(self, sites: list[RankedSite]) -> CampaignRunResult:
        """Execute the sharded campaign over a ranked list.

        The one-shot surface: plan a single epoch, execute it, build
        the journal.  Service mode (:mod:`repro.service`) calls
        :meth:`plan` / :meth:`execute` itself, once per scheduler
        epoch, over the same persistent pool.
        """
        return self.execute(self.plan(sites), sites_count=len(sites))

    def execute(
        self,
        plans: list[ShardPlan],
        *,
        sites_count: int | None = None,
        build_journal: bool = True,
    ) -> CampaignRunResult:
        """Dispatch prepared shard plans and merge their results.

        Re-entrant across epochs: with ``persistent_pool`` the same
        worker processes (and their warm world caches) serve every
        call.  ``build_journal=False`` skips per-call journal assembly
        for callers that merge observations across epochs themselves.
        """
        if sites_count is None:
            sites_count = sum(len(plan.sites) for plan in plans)
        merger = ShardResultMerger()
        wire_bytes: dict[int, int] = {}
        began = time.perf_counter()
        if self.executor == "serial" or self.workers == 1 or len(plans) <= 1:
            for plan in plans:
                merger.add(run_shard(plan))
        else:
            self._run_pooled(plans, merger, wire_bytes)
        wall = time.perf_counter() - began
        shard_results = merger.results
        attempts, stats, telemetry, fault_report = merger.finish()
        journal = (
            self._build_journal(sites_count, shard_results)
            if self.obs_enabled and build_journal
            else None
        )
        return CampaignRunResult(
            attempts=attempts,
            stats=stats,
            telemetry=telemetry,
            shard_results=shard_results,
            wall_seconds=wall,
            workers=self.workers,
            shards=self.shards,
            executor=self.executor,
            fault_report=fault_report,
            journal=journal,
            wire_bytes=wire_bytes,
        )

    def _build_journal(
        self, sites_count: int, shard_results: list[ShardResult]
    ) -> RunJournal:
        """The run journal for an observed run.

        Meta holds only worker-count-invariant facts — a journal from a
        4-worker process-pool run must byte-match the serial one.
        """
        meta = {
            "seed": self.seed,
            "population": self.population_size,
            "shards": self.shards,
            "sites": sites_count,
            "policy": self.policy.value,
            "fault_profile": self.fault_plan.profile if self.fault_plan else "off",
            "fault_seed": self.fault_plan.seed if self.fault_plan else 0,
            **self.obs_meta,
        }
        captures = [
            r.observation for r in shard_results if r.observation is not None
        ]
        return RunJournal(meta, captures)

    def _acquire_pool(self) -> concurrent.futures.Executor:
        """The executor pool — cached across runs when persistent.

        A persistent process pool is what makes warm workers pay off:
        worker processes survive between :meth:`run` calls, so their
        :mod:`repro.perf.warm` caches stay populated.
        """
        if self._pool is not None:
            return self._pool
        pool_cls = (
            concurrent.futures.ThreadPoolExecutor
            if self.executor == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        pool = pool_cls(max_workers=self.workers)
        if self.persistent_pool:
            self._pool = pool
        return pool

    def close(self) -> None:
        """Shut down the persistent pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_pooled(
        self,
        plans: list[ShardPlan],
        merger: ShardResultMerger,
        wire_bytes: dict[int, int],
    ) -> None:
        """Fan shards out and fold results in as they complete.

        No barrier: each result merges the moment its future resolves
        (the position-keyed merger makes completion order irrelevant),
        and the first shard failure propagates immediately — remaining
        futures are cancelled rather than drained.  The process
        backend ships results through the wire codec when enabled;
        threads share memory, so the codec would be pure overhead
        there.
        """
        use_codec = self.executor == "process" and self.wire_codec
        work = run_shard_wire if use_codec else run_shard
        pool = self._acquire_pool()
        try:
            futures = {pool.submit(work, plan): plan for plan in plans}
            try:
                for future in concurrent.futures.as_completed(futures):
                    payload = future.result()
                    if use_codec:
                        plan = futures[future]
                        wire_bytes[plan.shard_index] = len(payload)
                        payload = _wire.decode_shard_bytes(payload)
                    merger.add(payload)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        finally:
            if pool is not self._pool:
                pool.shutdown(wait=True, cancel_futures=True)
