"""Assembly of the full Tripwire measurement system.

:class:`TripwireSystem` is a thin facade over the two explicit layers:
a :class:`repro.core.substrate.WorldShard` (clock, event queue,
transport, WHOIS/DNS, site population) and a
:class:`repro.core.apparatus.MeasurementApparatus` (email provider,
mail chain, identity machinery, crawler).  Everything is deterministic
given the seed; the familiar flat attributes (``system.clock``,
``system.crawler``, ...) are aliases into the layers so existing code
and tests are unaffected by the decomposition.

Sharded campaign execution (:mod:`repro.core.runner`) builds one
system per rank-partition with an ``apparatus_namespace`` so each
shard mints distinct identities while agreeing on the site population.
"""

from __future__ import annotations

from repro.core.apparatus import DEFAULT_COVER_DOMAINS, MeasurementApparatus
from repro.core.substrate import WorldShard
from repro.crawler.engine import CrawlerConfig
from repro.email_provider.telemetry import LoginMethod
from repro.faults.plan import FaultPlan
from repro.identity.passwords import PasswordClass
from repro.mail.messages import EmailMessage
from repro.net.ipaddr import IPv4Address
from repro.util.rngtree import RngTree
from repro.util.timeutil import STUDY_START, SimInstant
from repro.web.generator import GeneratorConfig

__all__ = ["DEFAULT_COVER_DOMAINS", "TripwireSystem"]


class TripwireSystem:
    """The wired-together measurement system and its world."""

    def __init__(
        self,
        seed: int = 7,
        population_size: int = 30000,
        provider_domain: str = "bigmail.example",
        retention_days: int = 60,
        start: SimInstant = STUDY_START,
        generator_config: GeneratorConfig | None = None,
        crawler_config: CrawlerConfig | None = None,
        site_overrides: dict[int, dict[str, object]] | None = None,
        proxy_pool_size: int = 64,
        apparatus_namespace: tuple[object, ...] = (),
        fault_plan: FaultPlan | None = None,
        obs_enabled: bool = False,
        warm: object | None = None,
        spec_cache: object | None = None,
    ):
        self.tree = RngTree(seed)
        #: The apparatus draws from a (possibly shard-namespaced) tree
        #: so parallel shards mint distinct identities; the substrate
        #: always uses the root tree so site specs agree across shards.
        self.apparatus_tree = (
            self.tree.child(*apparatus_namespace) if apparatus_namespace else self.tree
        )

        self.world = WorldShard(
            self.tree, start=start, fault_plan=fault_plan, obs_enabled=obs_enabled
        )
        self.apparatus = MeasurementApparatus(
            self.world,
            self.apparatus_tree,
            provider_domain=provider_domain,
            retention_days=retention_days,
            crawler_config=crawler_config,
            proxy_pool_size=proxy_pool_size,
        )
        #: Warm-worker world cache (:mod:`repro.perf.warm`), if any.
        #: Only shard-invariant substrate products flow through it — the
        #: site-spec cache here, the identity corpus via
        #: :meth:`provision_identities` — so warm and cold runs stay
        #: bit-identical.
        self.warm = warm
        #: An explicit ``spec_cache`` (e.g. the world store's read-only
        #: adapter) wins over the warm cache's — disk-backed specs are
        #: already the fully built table the warm cache approximates.
        if spec_cache is None:
            spec_cache = getattr(warm, "spec_cache", None)
        self.population = self.world.build_population(
            population_size,
            mail_router=self.route_site_mail,
            config=generator_config,
            overrides=site_overrides,
            spec_cache=spec_cache,
        )

        # -- flat aliases into the layers (the pre-decomposition API) ------
        self.clock = self.world.clock
        self.queue = self.world.queue
        self.transport = self.world.transport
        self.whois = self.world.whois
        self.dns = self.world.dns
        self.provider = self.apparatus.provider
        self.mail_server = self.apparatus.mail_server
        self.forwarding_hop = self.apparatus.forwarding_hop
        self.identity_factory = self.apparatus.identity_factory
        self.pool = self.apparatus.pool
        self.control_locals = self.apparatus.control_locals
        self.proxy_pool = self.apparatus.proxy_pool
        self.solver = self.apparatus.solver
        self.crawler = self.apparatus.crawler
        self.fault_plan = self.world.fault_plan
        self.fault_report = self.world.fault_report
        self.obs = self.world.obs

    # -- mail routing ------------------------------------------------------------

    def route_site_mail(self, message: EmailMessage) -> bool:
        """Deliver site-originated mail to whichever domain it targets.

        Mail for the provider goes through the provider (which forwards
        to the Tripwire mail server); anything else evaporates — other
        providers are outside the measurement.
        """
        domain = message.recipient.partition("@")[2].lower()
        if domain == self.provider.domain:
            return self.provider.deliver(message)
        return False

    # -- identity provisioning -------------------------------------------------------

    def provision_identities(
        self,
        count: int,
        password_class: PasswordClass,
        *,
        prebuilt=None,
        record=None,
    ) -> int:
        """Create identities and the matching provider accounts."""
        return self.apparatus.provision_identities(
            count, password_class, prebuilt=prebuilt, record=record
        )

    def provision_control_accounts(self, count: int) -> list[str]:
        """Create control accounts we log into ourselves (Section 4.2)."""
        return self.apparatus.provision_control_accounts(count)

    def login_control_accounts(self, batched: bool = False) -> int:
        """Log into every control account from an institution IP.

        These logins must all surface in provider dumps — the liveness
        check on the telemetry pipeline.  ``batched`` routes the probes
        through the provider's batch login engine as one window; the
        outcome per account (and every journal byte) is identical to
        the per-event path.
        """
        institution_ip: IPv4Address = self.proxy_pool.addresses[0]
        attempts = []
        for local in sorted(self.control_locals):
            identity = self.pool.identity_for_email(f"{local}@{self.provider.domain}")
            if identity is None:
                continue
            attempts.append((local, identity.password, institution_ip))
        if batched:
            from repro.email_provider.batch import LoginBatch

            batch = LoginBatch.from_attempts(
                [(a[0], a[1], a[2], LoginMethod.WEBMAIL) for a in attempts]
            )
            return self.provider.attempt_logins(batch).successes
        succeeded = 0
        for local, password, ip in attempts:
            result = self.provider.attempt_login(
                local, password, ip, LoginMethod.WEBMAIL
            )
            if result.value == "success":
                succeeded += 1
        return succeeded
