"""Assembly of the full Tripwire measurement system.

One :class:`TripwireSystem` owns the simulated world (clock, event
queue, network, site population) plus the measurement apparatus (email
provider relationship, forwarding chain, mail server, identity pool,
crawler).  Everything is deterministic given the seed.
"""

from __future__ import annotations

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.email_provider.provider import EmailProvider
from repro.email_provider.telemetry import LoginMethod
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityPool
from repro.mail.forwarding import ForwardingHop
from repro.mail.messages import EmailMessage
from repro.mail.server import TripwireMailServer
from repro.net.dns import DnsResolver
from repro.net.ipaddr import IPv4Address
from repro.net.proxies import ResearchProxyPool
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.util.rngtree import RngTree
from repro.util.timeutil import STUDY_START, SimInstant
from repro.web.generator import GeneratorConfig
from repro.web.population import InternetPopulation

#: Cover domains whose mail is hosted third-party then relayed to us.
DEFAULT_COVER_DOMAINS = ("plainmailbox.example", "mailrelay-7.example")


class TripwireSystem:
    """The wired-together measurement system and its world."""

    def __init__(
        self,
        seed: int = 7,
        population_size: int = 30000,
        provider_domain: str = "bigmail.example",
        retention_days: int = 60,
        start: SimInstant = STUDY_START,
        generator_config: GeneratorConfig | None = None,
        crawler_config: CrawlerConfig | None = None,
        site_overrides: dict[int, dict[str, object]] | None = None,
        proxy_pool_size: int = 64,
    ):
        self.tree = RngTree(seed)
        self.clock = SimClock(start)
        self.queue = EventQueue(self.clock)
        self.transport = Transport(self.clock)
        self.whois = WhoisRegistry()
        self.dns = DnsResolver()

        # -- email provider and mail chain ---------------------------------
        self.provider = EmailProvider(
            provider_domain, self.clock, self.tree, retention_days=retention_days
        )
        self.mail_server = TripwireMailServer(
            self.transport, self.tree.child("mail-server").rng()
        )
        self.forwarding_hop = ForwardingHop(
            list(DEFAULT_COVER_DOMAINS), self.mail_server.receive
        )
        self.provider.set_forwarding_hop(self.forwarding_hop)

        # -- identities ------------------------------------------------------
        self.identity_factory = IdentityFactory(self.tree, email_domain=provider_domain)
        self.pool = IdentityPool()
        self.control_locals: set[str] = set()
        self._forward_index = 0

        # -- crawler apparatus --------------------------------------------------
        self.proxy_pool = ResearchProxyPool(
            self.whois, self.tree.child("proxies").rng(), pool_size=proxy_pool_size
        )
        self.solver = CaptchaSolverService(self.tree.child("solver").rng())
        self.crawler = RegistrationCrawler(
            self.transport,
            self.solver,
            self.tree.child("crawler").rng(),
            config=crawler_config,
            proxy_pool=self.proxy_pool,
        )

        # -- the web -----------------------------------------------------------
        self.population = InternetPopulation(
            self.tree,
            self.clock,
            self.transport,
            self.whois,
            self.dns,
            size=population_size,
            mail_router=self.route_site_mail,
            config=generator_config,
            overrides=site_overrides,
        )

    # -- mail routing ------------------------------------------------------------

    def route_site_mail(self, message: EmailMessage) -> bool:
        """Deliver site-originated mail to whichever domain it targets.

        Mail for the provider goes through the provider (which forwards
        to the Tripwire mail server); anything else evaporates — other
        providers are outside the measurement.
        """
        domain = message.recipient.partition("@")[2].lower()
        if domain == self.provider.domain:
            return self.provider.deliver(message)
        return False

    # -- identity provisioning -------------------------------------------------------

    def provision_identities(self, count: int, password_class: PasswordClass) -> int:
        """Create identities and the matching provider accounts.

        Identities the provider rejects (collision / naming policy) are
        discarded, as in the paper.  Returns how many joined the pool.
        """
        added = 0
        for _ in range(count):
            identity = self.identity_factory.create(password_class)
            result = self.provider.provision(
                identity.email_local,
                identity.full_name,
                identity.password,
                forwarding_address=self.forwarding_hop.address_for(
                    identity.email_local, self._forward_index
                ),
            )
            self._forward_index += 1
            if not result.created:
                continue
            self.pool.add(identity)
            added += 1
        return added

    def provision_control_accounts(self, count: int) -> list[str]:
        """Create control accounts we log into ourselves (Section 4.2)."""
        created = []
        for _ in range(count):
            identity = self.identity_factory.create(PasswordClass.HARD)
            result = self.provider.provision(
                identity.email_local, identity.full_name, identity.password
            )
            if not result.created:
                continue
            self.pool.add_control(identity)
            self.control_locals.add(identity.email_local.lower())
            created.append(identity.email_local)
        return created

    def login_control_accounts(self) -> int:
        """Log into every control account from an institution IP.

        These logins must all surface in provider dumps — the liveness
        check on the telemetry pipeline.
        """
        institution_ip: IPv4Address = self.proxy_pool.addresses[0]
        succeeded = 0
        for local in sorted(self.control_locals):
            identity = self.pool.identity_for_email(f"{local}@{self.provider.domain}")
            if identity is None:
                continue
            result = self.provider.attempt_login(
                local, identity.password, institution_ip, LoginMethod.WEBMAIL
            )
            if result.value == "success":
                succeeded += 1
        return succeeded
