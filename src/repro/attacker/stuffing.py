"""Population-scale credential stuffing: vectorized cross-site replay.

The missing attack class: :mod:`~repro.attacker.checker` replays
*honey* credentials one at a time, but real stuffing campaigns replay
whole breached corpora against the population — O(accounts × sites)
traffic that only works columnar.  This module is the attack-side
mirror of the benign traffic stack:

- :func:`build_benign_corpus` turns one site breach into the columnar
  haul the attacker actually holds, honoring the acquisition channel:
  **online capture** leaks every member's site password in plaintext,
  a **database dump** leaks only what offline cracking recovers (a
  pure per-(user, site) coin from the reuse model);
- :class:`StuffingEngine` fans a corpus out as candidate columns —
  membership joins of breach rows against the
  :class:`~repro.identity.reuse.CrossSiteReuseModel` run as
  sorted-``searchsorted`` probes (never ``np.isin``, whose sort path
  drags ``numpy.ma`` imports into the hot loop) — and dispatches the
  provider-side wave through
  :meth:`~repro.email_provider.provider.EmailProvider.attempt_logins`
  in bounded :class:`~repro.email_provider.batch.LoginBatch` columns,
  with the scalar per-event path kept as the equivalence oracle;
- cross-site fan-out against non-provider targets is resolved from
  the reuse model directly (site T accepts the site-S password iff
  the user is an EXACT reuser — modulo deliberate derived-suffix
  collisions), producing per-target hit tallies the correlation
  analysis consumes.

Wave planning is **dispatch-independent**: every event column (user,
password, source IP, method) is fully generated before the
batched/per-event choice is consulted, so journal bytes cannot reveal
which engine authenticated a wave.  Per-wave randomness draws from
``rng_tree.child("stuffing", str(wave))`` — one namespaced stream per
wave index, so waves are order-independent under resume.  Draw order
inside a wave is part of the contract: per-event source IP, then the
per-event method column.
"""

from __future__ import annotations

import enum
from array import array
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.attacker.breach import BreachMethod
from repro.email_provider.batch import LoginBatch
from repro.email_provider.telemetry import METHOD_CODES, METHOD_ORDER, LoginMethod
from repro.identity.reuse import CrossSiteReuseModel
from repro.net.ipaddr import IPv4Address
from repro.util.rngtree import RngTree
from repro.util.timeutil import SimInstant

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    np = None

#: Stuffing proxies live in 46.0.0.0/8 — disjoint from the benign
#: population's 96.0.0.0/3 home/roaming space, so source-IP analysis
#: can never confuse a stuffed login with organic traffic.
PROXY_BASE = 0x2E000000
PROXY_BITS = 24

#: Method mix of stuffing tools: mail-protocol checkers (Section 6.2),
#: IMAP-heavy.  Cumulative thresholds, one ``random()`` per event.
_STUFFING_METHOD_MIX: tuple[tuple[float, int], ...] = (
    (0.50, METHOD_CODES[LoginMethod.IMAP]),
    (0.80, METHOD_CODES[LoginMethod.POP3]),
    (1.01, METHOD_CODES[LoginMethod.SMTP]),
)


class AttackClass(enum.Enum):
    """How attacker-held credentials were obtained / deployed.

    The separability contract: every attack login the analysis tables
    report belongs to exactly one of these.
    """

    ONLINE_CAPTURE = "online_capture"  # plaintext tapped at the site
    OFFLINE_CRACK = "offline_crack"  # recovered from a hash dump
    STUFFED_REUSE = "stuffed_reuse"  # cross-site replay of either haul


@dataclass(frozen=True)
class BreachCorpus:
    """One breached site's haul against the benign population, columnar.

    ``users`` (sorted user indices) and ``passwords`` are parallel:
    row *i* says the attacker holds ``passwords[i]`` for benign user
    ``users[i]``.  ``universe`` records the population size the corpus
    was derived against (membership is prefix-closed, so a corpus is
    valid for any provider holding at least that many benign rows).
    """

    site_rank: int
    site_host: str
    method: BreachMethod
    wave: int
    universe: int
    users: array
    passwords: list[str]

    def __len__(self) -> int:
        return len(self.users)

    @property
    def acquisition(self) -> AttackClass:
        """The acquisition half of the attack-class split."""
        if self.method is BreachMethod.ONLINE_CAPTURE:
            return AttackClass.ONLINE_CAPTURE
        return AttackClass.OFFLINE_CRACK


def build_benign_corpus(
    model: CrossSiteReuseModel,
    universe: int,
    site_rank: int,
    site_host: str,
    method: BreachMethod,
    wave: int = 0,
    crack_rate: float = 0.6,
) -> BreachCorpus:
    """The attacker's columnar haul from breaching one site.

    Site membership and (for dumps) the offline-cracking coin are pure
    per ``(user, site)`` lanes of the reuse model, so the same breach
    always yields the same corpus regardless of generation order.
    """
    members = model.members(site_rank, universe)
    if method is BreachMethod.DB_DUMP and crack_rate < 1.0:
        mask = model.cracked_mask(members, site_rank, crack_rate)
        if np is not None and isinstance(mask, np.ndarray):
            kept = array("q")
            kept.frombytes(
                np.frombuffer(members, dtype=np.int64)[mask].tobytes()
            )
        else:
            kept = array("q", (u for u, hit in zip(members, mask) if hit))
        members = kept
    passwords = model.site_passwords(members, site_rank)
    return BreachCorpus(
        site_rank=site_rank,
        site_host=site_host,
        method=method,
        wave=wave,
        universe=universe,
        users=members,
        passwords=passwords,
    )


def _intersect_sorted(a: array, b: array) -> array:
    """Sorted-array intersection as a ``searchsorted`` membership probe.

    ``a`` and ``b`` are sorted ``array('q')`` columns; returns the
    sorted intersection.  The numpy path probes ``a`` into ``b``
    (``np.isin`` deliberately avoided — its sort path concatenates
    both columns and lazily imports ``numpy.ma`` mid-hot-loop); the
    pure-python fallback is the classic two-pointer merge and serves
    as the join's equivalence oracle.
    """
    out = array("q")
    if not len(a) or not len(b):
        return out
    if np is not None:
        a_np = np.frombuffer(a, dtype=np.int64)
        b_np = np.frombuffer(b, dtype=np.int64)
        idx = np.searchsorted(b_np, a_np)
        idx[idx == len(b_np)] = 0  # out-of-range probes can't match
        out.frombytes(a_np[b_np[idx] == a_np].tobytes())
        return out
    i = j = 0
    append = out.append
    while i < len(a) and j < len(b):
        av, bv = a[i], b[j]
        if av == bv:
            append(av)
            i += 1
            j += 1
        elif av < bv:
            i += 1
        else:
            j += 1
    return out


@dataclass(frozen=True)
class SiteTargetReport:
    """Cross-site fan-out outcome at one non-provider target."""

    target_rank: int
    candidates: int  # breach rows with an account at the target
    hits: int  # candidates whose target password equals the haul's


@dataclass
class StuffingWave:
    """One planned wave: dispatch-ready columns plus fan-out reports.

    ``users`` is the provider-candidate column (sorted, parallel to
    the concatenated batch columns); ``batches`` group the same events
    into bounded :class:`LoginBatch` items without reordering them, so
    batch size — like the dispatch path — never shapes the journal.
    """

    wave: int
    corpus: BreachCorpus
    users: array
    batches: list[LoginBatch]
    site_targets: list[SiteTargetReport] = field(default_factory=list)

    @property
    def candidates(self) -> int:
        return len(self.users)


@dataclass
class StuffingWaveResult:
    """Outcome of one dispatched wave (engine-independent by contract)."""

    wave: int
    site_rank: int
    site_host: str
    method: str  # BreachMethod value
    acquisition: str  # AttackClass value of the haul
    candidates: int
    attempts: int
    successes: int
    bad_passwords: int
    throttled: int
    hit_users: array  # user indices whose provider login succeeded
    site_targets: list[SiteTargetReport] = field(default_factory=list)

    @property
    def attack_class(self) -> AttackClass:
        """Provider-side logins of a wave are stuffed reuse, always."""
        return AttackClass.STUFFED_REUSE


class StuffingEngine:
    """Plans and dispatches stuffing waves against one provider.

    Holds the reuse model, the registered population (for the shared
    locals table and ``first_row``) and a namespaced RNG tree; the
    provider's login state is the provider's own, so stuffed, benign
    and scalar logins interleave freely.
    """

    def __init__(
        self,
        provider,
        population,
        model: CrossSiteReuseModel,
        rng_tree: RngTree,
        batch_events: int = 8192,
    ):
        if population.first_row is None:
            raise ValueError("population must be registered with the provider")
        self._provider = provider
        self._population = population
        self._model = model
        self._tree = rng_tree.child("stuffing")
        self._batch_events = batch_events
        #: Dispatch tallies (plain attributes — flight snapshots only,
        #: never journal bytes).
        self.waves = 0
        self.attempts = 0
        self.successes = 0

    def stats(self) -> dict:
        return {
            "waves": self.waves,
            "attempts": self.attempts,
            "successes": self.successes,
        }

    # -- planning (pure generation, dispatch-independent) ------------------

    def plan_wave(
        self,
        corpus: BreachCorpus,
        targets: tuple[int, ...] = (),
    ) -> StuffingWave:
        """Generate one wave's full event columns plus fan-out reports.

        The provider-candidate join is the prefix of the (sorted)
        corpus below the registered population size; each non-provider
        target joins corpus rows against the target's membership
        column with a sorted-``searchsorted`` probe.
        """
        population = self._population
        model = self._model
        # Provider join: registered rows are exactly user indices
        # [0, size), and the corpus is sorted, so the join is the
        # prefix below the first out-of-range index.
        cut = bisect_left(corpus.users, population.size)
        users = corpus.users[:cut]
        passwords = corpus.passwords[:cut]
        n = len(users)

        rng = self._tree.child(str(corpus.wave)).rng()
        getrandbits = rng.getrandbits
        random = rng.random
        ips = array("Q")
        ips_append = ips.append
        for _ in range(n):
            ips_append(PROXY_BASE | getrandbits(PROXY_BITS))
        methods = bytearray(n)
        mix = _STUFFING_METHOD_MIX
        for i in range(n):
            roll = random()
            for threshold, code in mix:
                if roll < threshold:
                    methods[i] = code
                    break

        locals_table, _ = population.credentials()
        keys = list(map(locals_table.__getitem__, users))
        first_row = population.first_row
        rows = array("q", (first_row + u for u in users))

        step = self._batch_events
        if n <= step:
            batches = (
                [LoginBatch(keys, passwords, ips, methods, rows)] if n else []
            )
        else:
            batches = [
                LoginBatch(
                    keys[start : start + step],
                    passwords[start : start + step],
                    ips[start : start + step],
                    bytearray(methods[start : start + step]),
                    rows[start : start + step],
                )
                for start in range(0, n, step)
            ]

        site_targets = [
            self._probe_target(corpus, rank) for rank in targets
        ]
        return StuffingWave(
            wave=corpus.wave,
            corpus=corpus,
            users=users,
            batches=batches,
            site_targets=site_targets,
        )

    def _probe_target(self, corpus: BreachCorpus, rank: int) -> SiteTargetReport:
        """Join the corpus against one target site's membership."""
        if rank == corpus.site_rank:
            return SiteTargetReport(
                target_rank=rank, candidates=len(corpus), hits=len(corpus)
            )
        members = self._model.members(rank, corpus.universe)
        candidates = _intersect_sorted(corpus.users, members)
        if not len(candidates):
            return SiteTargetReport(target_rank=rank, candidates=0, hits=0)
        # The haul's password for each candidate, gathered by position.
        held = [
            corpus.passwords[bisect_left(corpus.users, u)] for u in candidates
        ]
        stored = self._model.site_passwords(candidates, rank)
        hits = sum(1 for h, s in zip(held, stored) if h == s)
        return SiteTargetReport(
            target_rank=rank, candidates=len(candidates), hits=hits
        )

    # -- dispatch ----------------------------------------------------------

    def dispatch_batch(
        self, batch: LoginBatch, batched: bool, now: SimInstant | None = None
    ) -> bytearray:
        """Authenticate one wave batch; returns per-event result codes.

        ``batched`` selects the vectorized engine or the per-event
        oracle; the codes — and every provider state transition — are
        identical either way (the batch engine's contract).
        """
        provider = self._provider
        if batched:
            return provider.attempt_logins(batch, now=now).results
        from repro.email_provider.provider import RESULT_CODES

        attempt_login = provider.attempt_login
        keys, passwords = batch.keys, batch.passwords
        ips, methods = batch.ips, batch.methods
        results = bytearray()
        results_append = results.append
        for i in range(len(keys)):
            result = attempt_login(
                keys[i],
                passwords[i],
                IPv4Address(ips[i]),
                METHOD_ORDER[methods[i]],
            )
            results_append(RESULT_CODES[result])
        return results

    def collect(self, wave: StuffingWave, results: bytearray) -> StuffingWaveResult:
        """Fold one wave's result codes into its dispatch-independent
        record (and the engine tallies)."""
        successes = results.count(0)
        hit_users = array("q")
        if successes:
            if np is not None and len(results) == len(wave.users):
                results_np = np.frombuffer(results, dtype=np.uint8)
                users_np = np.frombuffer(wave.users, dtype=np.int64)
                hit_users.frombytes(users_np[results_np == 0].tobytes())
            else:
                hit_users.extend(
                    u
                    for u, code in zip(wave.users, results)
                    if code == 0
                )
        corpus = wave.corpus
        self.waves += 1
        self.attempts += len(results)
        self.successes += successes
        return StuffingWaveResult(
            wave=wave.wave,
            site_rank=corpus.site_rank,
            site_host=corpus.site_host,
            method=corpus.method.value,
            acquisition=corpus.acquisition.value,
            candidates=wave.candidates,
            attempts=len(results),
            successes=successes,
            bad_passwords=results.count(1),
            throttled=results.count(3),
            hit_users=hit_users,
            site_targets=wave.site_targets,
        )

    def execute_wave(
        self,
        wave: StuffingWave,
        batched: bool = True,
        now: SimInstant | None = None,
    ) -> StuffingWaveResult:
        """Dispatch a whole planned wave (bench/test convenience)."""
        results = bytearray()
        for batch in wave.batches:
            results.extend(self.dispatch_batch(batch, batched, now=now))
        return self.collect(wave, results)
