"""Post-compromise monetization behaviors (Section 6.4.4).

Most stolen accounts sat idle — stockpiled or quietly watched.  Eight
of 27 showed action: the provider deactivated seven for sending spam,
forced a reset on one, and on one account the attacker changed the
password and removed the forwarding address before the shutdown.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.email_provider.provider import EmailProvider
from repro.obs import NO_OP


@dataclass
class MonetizationLog:
    """What the attacker did with one account."""

    spam_sent: int = 0
    password_changed: bool = False
    forwarding_removed: bool = False
    actions: list[str] = field(default_factory=list)


class Monetizer:
    """Decides, per successful login, whether to act on an account."""

    #: Per-login probability of starting a spam run once warmed up.
    SPAM_PROB = 0.0025
    #: Per-login probability of hijacking (password change + forwarding
    #: removal) — rare; happened once in the paper (account g2).
    HIJACK_PROB = 0.002
    #: Sessions before any monetization is considered (stockpiling).
    WARMUP_SESSIONS = 3

    def __init__(self, provider: EmailProvider, rng: random.Random, obs=NO_OP):
        self._provider = provider
        self._rng = rng
        self._obs = obs
        self._log_events = obs.get_logger("attacker.monetize")
        self._logs: dict[str, MonetizationLog] = {}

    def log_for(self, email_local: str) -> MonetizationLog:
        """Actions taken against one account so far."""
        return self._logs.setdefault(email_local.lower(), MonetizationLog())

    def after_login(self, email_local: str, password: str, successes: int) -> str | None:
        """Consider monetization after the ``successes``-th good login.

        Returns the new password when the attacker hijacked the account
        (so the caller can keep logging in), else None.
        """
        if successes < self.WARMUP_SESSIONS:
            return None
        log = self.log_for(email_local)
        roll = self._rng.random()
        if roll < self.HIJACK_PROB and not log.password_changed:
            new_password = f"Hj{self._rng.randrange(10**8):08d}x"
            if self._provider.change_password(email_local, password, new_password):
                log.password_changed = True
                log.actions.append("password_changed")
                self._obs.count("attacker.hijacks")
                self._log_events.info("account hijacked", account=email_local)
                if self._provider.remove_forwarding(email_local, new_password):
                    log.forwarding_removed = True
                    log.actions.append("forwarding_removed")
                return new_password
            return None
        if roll < self.HIJACK_PROB + self.SPAM_PROB:
            sent = self._provider.send_spam_from(email_local, password, count=45)
            if sent:
                log.spam_sent += sent
                log.actions.append(f"spam x{sent}")
                self._obs.count("attacker.spam_sent", sent)
        return None

    def all_logs(self) -> dict[str, MonetizationLog]:
        """Every account the monetizer touched."""
        return dict(self._logs)
