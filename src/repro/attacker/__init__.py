"""The attacker ecosystem.

Tripwire never observes attackers directly — only the login events they
leave at the email provider.  This package generates that ground truth:
site breaches (database dumps or online captures), offline cracking
that respects each site's password-storage policy, and password-reuse
credential-checking campaigns run through a global botnet of mostly
residential proxies, with the burstiness, method mix and monetization
behaviors reported in Section 6.4.
"""

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.breach import BreachEvent, BreachMethod, StolenRecord, execute_breach
from repro.attacker.cracking import CrackedCredential, crack_records
from repro.attacker.profiles import CheckerArchetype, CheckerProfile, draw_profile
from repro.attacker.checker import CredentialChecker
from repro.attacker.monetize import Monetizer
from repro.attacker.site_bruteforce import BruteForceStats, SiteBruteForcer
from repro.attacker.stuffing import (
    AttackClass,
    BreachCorpus,
    StuffingEngine,
    StuffingWave,
    StuffingWaveResult,
    build_benign_corpus,
)

__all__ = [
    "SiteBruteForcer",
    "BruteForceStats",
    "BotnetProxyNetwork",
    "BreachEvent",
    "BreachMethod",
    "StolenRecord",
    "execute_breach",
    "CrackedCredential",
    "crack_records",
    "CheckerProfile",
    "CheckerArchetype",
    "draw_profile",
    "CredentialChecker",
    "Monetizer",
    "AttackClass",
    "BreachCorpus",
    "StuffingEngine",
    "StuffingWave",
    "StuffingWaveResult",
    "build_benign_corpus",
]
