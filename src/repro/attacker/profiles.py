"""Attacker behavior archetypes.

Table 3 shows wild variety: accounts logged into exactly once (a1, k2,
o1), accounts scraped hundreds of times over many months (m1: 207
logins across 306 days), delays from 3 to 639 days between registration
and first access, multi-IP bursts (46 IPs in 10 minutes on g1) and
single-IP hammering (75%+ of some accounts' logins within seconds).
Three archetypes span that space.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.email_provider.telemetry import LoginMethod
from repro.util.rngtree import weighted_choice


class CheckerArchetype(enum.Enum):
    """Coarse attacker behavior class."""

    VERIFIER = "verifier"  # check once or twice, then stockpile
    SCRAPER = "scraper"  # recurring observation/siphoning
    COLLECTOR = "collector"  # loosely-coupled distributed checkers; bursty


@dataclass(frozen=True)
class CheckerProfile:
    """Concrete parameters for one breach's credential checking."""

    archetype: CheckerArchetype
    initial_delay_days: float  # credential availability → first check
    session_count: int  # login sessions planned per account
    period_days: float  # mean days between sessions
    multi_ip_burst_prob: float  # session → burst from many IPs
    hammer_prob: float  # session → one IP, dozens of rapid logins
    method_weights: tuple[tuple[LoginMethod, float], ...] = (
        (LoginMethod.IMAP, 0.80),
        (LoginMethod.POP3, 0.10),
        (LoginMethod.WEBMAIL, 0.08),
        (LoginMethod.ACTIVESYNC, 0.02),
    )

    def draw_method(self, rng: random.Random) -> LoginMethod:
        """Sample an access method for one session."""
        return weighted_choice(rng, self.method_weights)


def draw_profile(rng: random.Random) -> CheckerProfile:
    """Sample a profile with Table 3-like diversity."""
    archetype = weighted_choice(rng, (
        (CheckerArchetype.VERIFIER, 0.30),
        (CheckerArchetype.SCRAPER, 0.45),
        (CheckerArchetype.COLLECTOR, 0.25),
    ))
    if archetype is CheckerArchetype.VERIFIER:
        return CheckerProfile(
            archetype=archetype,
            initial_delay_days=rng.uniform(3, 240),
            session_count=rng.randint(1, 4),
            period_days=rng.uniform(20, 120),
            multi_ip_burst_prob=0.02,
            hammer_prob=0.02,
        )
    if archetype is CheckerArchetype.SCRAPER:
        return CheckerProfile(
            archetype=archetype,
            initial_delay_days=rng.uniform(3, 200),
            session_count=rng.randint(20, 260),
            period_days=rng.uniform(1.0, 6.0),
            multi_ip_burst_prob=0.05,
            hammer_prob=0.08,
        )
    return CheckerProfile(
        archetype=archetype,
        initial_delay_days=rng.uniform(10, 300),
        session_count=rng.randint(5, 90),
        period_days=rng.uniform(2.0, 20.0),
        multi_ip_burst_prob=0.25,
        hammer_prob=0.15,
    )
