"""The attacker's proxy botnet (Section 6.4.3).

Login IPs in the paper were "consistent with large-scale botnets of
leased proxies": 1,316 distinct IPs across ~1,792 logins, 92 countries
dominated by Russia/China/US/Vietnam, mostly residential with a few
higher-volume datacenter hosts.  The network allocates WHOIS-registered
blocks with that country and host-kind mix and hands out login IPs with
mostly-fresh, occasionally-sticky reuse.
"""

from __future__ import annotations

import random

from repro.data.geo import ATTACKER_COUNTRY_WEIGHTS
from repro.net.ipaddr import IPv4Address
from repro.net.whois import HostKind, WhoisRecord, WhoisRegistry
from repro.util.rngtree import weighted_choice


class BotnetProxyNetwork:
    """Leased-proxy pool spanning many countries."""

    #: Fraction of leased blocks that are residential eyeball space.
    RESIDENTIAL_FRACTION = 0.85

    def __init__(
        self,
        registry: WhoisRegistry,
        rng: random.Random,
        block_count: int = 64,
    ):
        if block_count < 1:
            raise ValueError("block_count must be positive")
        self._rng = rng
        self._blocks: list[WhoisRecord] = []
        for index in range(block_count):
            country = weighted_choice(rng, ATTACKER_COUNTRY_WEIGHTS)
            if rng.random() < self.RESIDENTIAL_FRACTION:
                kind = HostKind.RESIDENTIAL
                org = f"{country} Broadband Customer Pool {index}"
            else:
                kind = HostKind.DATACENTER
                org = f"{country} Hosting Services {index}"
            self._blocks.append(registry.allocate_block(24, org, country, kind))
        self._handed_out: list[IPv4Address] = []
        self._sticky: IPv4Address | None = None

    def fresh_ip(self) -> IPv4Address:
        """A login IP, usually never seen before.

        A small sticky-reuse probability reproduces the minority of
        repeated IPs (181 of 1,316 appeared more than once; one IP 58
        times, the hammering head of §6.4.2).
        """
        if self._sticky is not None and self._rng.random() < 0.13:
            return self._sticky
        block = self._rng.choice(self._blocks)
        ip = block.block.address_at(self._rng.randrange(1, block.block.size() - 1))
        self._handed_out.append(ip)
        if self._rng.random() < 0.10:
            self._sticky = ip
        return ip

    def hammer_ip(self) -> IPv4Address:
        """One IP to be reused dozens of times within seconds."""
        block = self._rng.choice(self._blocks)
        ip = block.block.address_at(self._rng.randrange(1, block.block.size() - 1))
        self._handed_out.append(ip)
        return ip

    def blocks(self) -> list[WhoisRecord]:
        """The leased blocks (for analysis cross-checks)."""
        return list(self._blocks)
