"""Password-reuse credential checking (the attack Tripwire detects).

For every recovered credential whose email lives at a provider the
attacker cares to test, the checker schedules login sessions on the
event queue: an initial check after the profile's delay, then recurring
sessions.  Sessions occasionally expand into multi-IP bursts or
single-IP hammering (Section 6.4.2).  Accounts whose password stops
working, or which the provider freezes, are abandoned.

Evasion strategies (Section 7.3) are expressed here: ``test_fraction``
checks only a sample of the haul, and ``avoided_domains`` skips a
provider entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.cracking import CrackedCredential
from repro.attacker.monetize import Monetizer
from repro.attacker.profiles import CheckerProfile
from repro.email_provider.provider import EmailProvider, LoginResult
from repro.sim.events import EventQueue
from repro.util.timeutil import DAY, MINUTE, SimInstant


@dataclass
class AccountCampaign:
    """Checker state for one credential."""

    credential: CrackedCredential
    profile: CheckerProfile
    password: str = ""  # current working password (may change on hijack)
    sessions_done: int = 0
    successes: int = 0
    abandoned: bool = False
    results: list[LoginResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.password:
            self.password = self.credential.password


class CredentialChecker:
    """Runs reuse-login campaigns against the email provider."""

    def __init__(
        self,
        provider: EmailProvider,
        botnet: BotnetProxyNetwork,
        queue: EventQueue,
        rng: random.Random,
        monetizer: Monetizer | None = None,
        test_fraction: float = 1.0,
        avoided_domains: frozenset[str] = frozenset(),
        horizon: SimInstant | None = None,
    ):
        if not 0.0 <= test_fraction <= 1.0:
            raise ValueError("test_fraction must be a probability")
        self._provider = provider
        self._botnet = botnet
        self._queue = queue
        self._rng = rng
        self._monetizer = monetizer
        self.test_fraction = test_fraction
        self.avoided_domains = {d.lower() for d in avoided_domains}
        self._horizon = horizon
        self.campaigns: list[AccountCampaign] = []
        self.skipped_by_sampling = 0
        self.skipped_by_avoidance = 0
        self.total_login_attempts = 0

    # -- launch ----------------------------------------------------------------

    def launch(self, cracked: list[CrackedCredential], profile: CheckerProfile) -> int:
        """Schedule campaigns for a haul; returns campaigns started."""
        started = 0
        for credential in cracked:
            domain = credential.email.partition("@")[2].lower()
            if domain in self.avoided_domains:
                self.skipped_by_avoidance += 1
                continue
            if domain != self._provider.domain:
                continue  # some other provider; outside our telemetry
            if self._rng.random() >= self.test_fraction:
                self.skipped_by_sampling += 1
                continue
            campaign = AccountCampaign(credential=credential, profile=profile)
            self.campaigns.append(campaign)
            first = credential.available_at + int(profile.initial_delay_days * DAY)
            first += self._rng.randrange(0, DAY)
            if self._horizon is not None and first > self._horizon:
                # Fresh hauls get checked before they go stale; pull the
                # first probe inside the observation horizon.
                window_start = max(credential.available_at + DAY, self._horizon - 45 * DAY)
                if window_start < self._horizon:
                    first = self._rng.randrange(window_start, self._horizon)
                # else: the horizon already passed when the credential
                # became available; leave the late time in place and let
                # _schedule_session drop it.
            self._schedule_session(campaign, first)
            started += 1
        return started

    def _schedule_session(self, campaign: AccountCampaign, when: SimInstant) -> None:
        if self._horizon is not None and when > self._horizon:
            return
        local = campaign.credential.email.partition("@")[0]
        self._queue.schedule(when, f"check:{local}", lambda: self._run_session(campaign))

    # -- session execution ---------------------------------------------------------

    def _run_session(self, campaign: AccountCampaign) -> None:
        if campaign.abandoned:
            return
        profile = campaign.profile
        roll = self._rng.random()
        if roll < profile.hammer_prob:
            attempts = self._rng.randint(15, 60)
            self._hammer(campaign, attempts)
        elif roll < profile.hammer_prob + profile.multi_ip_burst_prob:
            ips = self._rng.randint(5, 46)
            self._burst(campaign, ips)
        else:
            self._attempt_once(campaign, self._botnet.fresh_ip())
        campaign.sessions_done += 1
        if campaign.abandoned or campaign.sessions_done >= profile.session_count:
            return
        gap_days = max(0.05, self._rng.expovariate(1.0 / profile.period_days))
        next_time = self._queue.clock.now() + int(gap_days * DAY)
        self._schedule_session(campaign, next_time)

    def _hammer(self, campaign: AccountCampaign, attempts: int) -> None:
        """Dozens/hundreds of logins from one IP within seconds."""
        ip = self._botnet.hammer_ip()
        for _ in range(attempts):
            if campaign.abandoned:
                return
            self._attempt_once(campaign, ip)
            self._queue.clock.advance(self._rng.randrange(0, 3))

    def _burst(self, campaign: AccountCampaign, ip_count: int) -> None:
        """Distinct IPs hitting the same account in rapid succession."""
        for _ in range(ip_count):
            if campaign.abandoned:
                return
            self._attempt_once(campaign, self._botnet.fresh_ip())
            self._queue.clock.advance(self._rng.randrange(5, 3 * MINUTE))

    def _attempt_once(self, campaign: AccountCampaign, ip) -> None:
        local = campaign.credential.email.partition("@")[0]
        method = campaign.profile.draw_method(self._rng)
        result = self._provider.attempt_login(local, campaign.password, ip, method)
        self.total_login_attempts += 1
        campaign.results.append(result)
        if result is LoginResult.SUCCESS:
            campaign.successes += 1
            if self._monetizer is not None:
                new_password = self._monetizer.after_login(
                    local, campaign.password, campaign.successes
                )
                if new_password is not None:
                    campaign.password = new_password
            return
        if result in (LoginResult.BAD_PASSWORD, LoginResult.ACCOUNT_DEACTIVATED,
                      LoginResult.ACCOUNT_FROZEN, LoginResult.RESET_REQUIRED,
                      LoginResult.NO_SUCH_ACCOUNT):
            # The credential no longer works (or never did); loosely
            # coupled systems may retry within a burst, but the
            # campaign as a whole gives up.
            campaign.abandoned = True
