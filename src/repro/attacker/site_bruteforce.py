"""Online brute-forcing at the site itself (Sections 4.4 and 6.3.5).

The paper considers the possibility that "an attacker somehow guesses
our usernames (or a site exposes them) and the site does not prevent
brute-forcing attempts on its accounts" — sites E/F listed usernames on
public pages and had no login rate limiting.  "While unlikely, we
consider this within the bounds of attacks that Tripwire should
detect": the attacker ends up holding valid site credentials and reuses
them at the email provider, which convicts the site exactly as a
database breach would.

The attack is fully mechanical: scrape the public member list over
HTTP, run a dictionary against the site's login endpoint (bounded by
whatever rate limiting the site enforces), and emit recovered
credentials in the checker's format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacker.cracking import CrackedCredential, dictionary_guesses
from repro.html.parser import parse_html
from repro.net.ipaddr import IPv4Address
from repro.net.transport import Transport, TransportError
from repro.util.timeutil import SimInstant


@dataclass
class BruteForceStats:
    """Accounting for one site attack."""

    usernames_found: int = 0
    login_attempts: int = 0
    locked_out_accounts: int = 0
    credentials_recovered: int = 0


class SiteBruteForcer:
    """Scrape-and-guess attacker against one site's login endpoint."""

    #: Attempts per account before moving on (cost control, not ethics).
    MAX_GUESSES_PER_ACCOUNT = 2000

    def __init__(
        self,
        transport: Transport,
        attacker_ip: IPv4Address,
        provider_domain: str = "bigmail.example",
    ):
        self._transport = transport
        self._ip = attacker_ip
        #: The provider the attacker guesses for username@provider
        #: reuse.  Tripwire site usernames are 14-char prefixes of the
        #: email local (§4.1.1), so the guess only lands for short
        #: locals — an honest coverage gap of this attack channel.
        self._provider_domain = provider_domain.lower()
        self.stats = BruteForceStats()

    def harvest_usernames(self, host: str) -> list[str]:
        """Scrape the public member directory, if the site has one."""
        try:
            response = self._transport.get(f"http://{host}/users", client_ip=self._ip)
        except TransportError:
            return []
        if not response.ok:
            return []
        dom = parse_html(response.body)
        usernames = [
            node.text_content()
            for node in dom.find_all("li")
            if "member" in node.classes
        ]
        self.stats.usernames_found = len(usernames)
        return usernames

    def attack(self, host: str, when: SimInstant) -> list[CrackedCredential]:
        """Run the full scrape-and-guess attack; returns working creds.

        A site with login rate limiting locks the account long before a
        dictionary completes, so only unprotected sites (like E/F) leak.
        """
        recovered: list[CrackedCredential] = []
        guesses = dictionary_guesses()[: self.MAX_GUESSES_PER_ACCOUNT]
        for username in self.harvest_usernames(host):
            hit = self._guess_account(host, username, guesses)
            if hit is None:
                continue
            recovered.append(
                CrackedCredential(
                    site_host=host,
                    username=username,
                    # Reuse attacks try the username as an email local
                    # part at major providers — exactly how Tripwire's
                    # site usernames map back to its accounts.
                    email=f"{username}@{self._provider_domain}",
                    password=hit,
                    available_at=when,
                )
            )
        self.stats.credentials_recovered = len(recovered)
        return recovered

    def _guess_account(self, host: str, username: str, guesses: list[str]) -> str | None:
        for guess in guesses:
            self.stats.login_attempts += 1
            try:
                response = self._transport.post(
                    f"http://{host}/login",
                    {"login": username, "password": guess},
                    client_ip=self._ip,
                )
            except TransportError:
                return None
            if response.status == 429:
                # Rate limited: the site's protection won (§4.4).
                self.stats.locked_out_accounts += 1
                return None
            if response.ok:
                return guess
        return None
