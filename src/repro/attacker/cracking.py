"""Offline password recovery from stolen records.

The recovery model follows Section 6.1.2 exactly:

- reversible storage (plaintext / "encrypted") yields every password
  immediately;
- hashed storage falls to a dictionary attack for dictionary-derived
  passwords — Tripwire's "easy" class — after a delay that grows with
  hash strength;
- random "hard" passwords are never recovered from a one-way hash.

The dictionary attack literally mangles the same word list the easy
generator uses (capitalize + digit suffix), so recovery is mechanical,
not an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacker.breach import StolenRecord
from repro.identity.passwords import dictionary_for_cracking
from repro.util.timeutil import DAY, SimInstant


@dataclass(frozen=True)
class CrackedCredential:
    """One recovered (email, password) pair, available at a time."""

    site_host: str
    username: str
    email: str
    password: str
    available_at: SimInstant


def dictionary_guesses() -> list[str]:
    """The mangled guess list: Capitalized word + single digit."""
    guesses = []
    for word in dictionary_for_cracking():
        base = word.capitalize()
        guesses.extend(f"{base}{digit}" for digit in "0123456789")
    return guesses


def crack_records(
    records: list[StolenRecord],
    breach_time: SimInstant,
    guesses: list[str] | None = None,
) -> list[CrackedCredential]:
    """Run recovery over a haul; returns credentials with availability times."""
    if guesses is None:
        guesses = dictionary_guesses()
    cracked: list[CrackedCredential] = []
    for record in records:
        if record.plaintext is not None:
            cracked.append(
                CrackedCredential(
                    site_host=record.site_host,
                    username=record.username,
                    email=record.email,
                    password=record.plaintext,
                    available_at=breach_time,
                )
            )
            continue
        delay = record.credential.storage.crack_delay_days * DAY
        recovered = _dictionary_attack(record, guesses)
        if recovered is not None:
            cracked.append(
                CrackedCredential(
                    site_host=record.site_host,
                    username=record.username,
                    email=record.email,
                    password=recovered,
                    available_at=breach_time + delay,
                )
            )
    return cracked


def _dictionary_attack(record: StolenRecord, guesses: list[str]) -> str | None:
    for guess in guesses:
        if record.credential.matches_guess(guess):
            return guess
    return None
