"""Offline password recovery from stolen records.

The recovery model follows Section 6.1.2 exactly:

- reversible storage (plaintext / "encrypted") yields every password
  immediately;
- hashed storage falls to a dictionary attack for dictionary-derived
  passwords — Tripwire's "easy" class — after a delay that grows with
  hash strength;
- random "hard" passwords are never recovered from a one-way hash.

The dictionary attack literally mangles the same word list the easy
generator uses (capitalize + digit suffix), so recovery is mechanical,
not an oracle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.attacker.breach import StolenRecord
from repro.identity.passwords import dictionary_for_cracking
from repro.perf import caching as _perf
from repro.util.timeutil import DAY, SimInstant
from repro.web.passwords import PasswordStorage


@dataclass(frozen=True)
class CrackedCredential:
    """One recovered (email, password) pair, available at a time."""

    site_host: str
    username: str
    email: str
    password: str
    available_at: SimInstant


def dictionary_guesses() -> list[str]:
    """The mangled guess list: Capitalized word + single digit."""
    return list(_mangled_guesses())


@lru_cache(maxsize=1)
def _mangled_guesses() -> tuple[str, ...]:
    guesses = []
    for word in dictionary_for_cracking():
        base = word.capitalize()
        guesses.extend(f"{base}{digit}" for digit in "0123456789")
    return tuple(guesses)


class _PreparedGuesses:
    """One guess list pre-encoded for the tight hashing loop.

    For unsalted schemes the full digest table is built once and every
    record becomes a dict lookup; for salted schemes the per-guess UTF-8
    encodings are reused so the inner loop is a single concatenation
    plus one C-level sha256 per guess.
    """

    __slots__ = ("guesses", "encoded", "_md5_table", "_guess_set")

    def __init__(self, guesses: tuple[str, ...]):
        self.guesses = guesses
        self.encoded = tuple(guess.encode("utf-8") for guess in guesses)
        self._md5_table: dict[str, str] | None = None
        self._guess_set: frozenset[str] | None = None

    def md5_table(self) -> dict[str, str]:
        """digest -> first guess producing it (matches scan order)."""
        if self._md5_table is None:
            table: dict[str, str] = {}
            sha256 = hashlib.sha256
            for guess, encoded in zip(self.guesses, self.encoded):
                table.setdefault(sha256(b"md5||" + encoded).hexdigest(), guess)
            self._md5_table = table
        return self._md5_table

    def guess_set(self) -> frozenset[str]:
        if self._guess_set is None:
            self._guess_set = frozenset(self.guesses)
        return self._guess_set


_PREPARED_CACHE = _perf.LruCache(maxsize=8, name="cracking-guesses")


def _prepared_for(guesses) -> _PreparedGuesses:
    """The prepared form of a guess list, memoized two ways.

    **By identity** for immutable (tuple) dictionaries — the default
    ``_mangled_guesses()`` tuple above all: serve-mode campaigns crack
    a haul per breach wave, and keying on ``id`` makes the repeat
    lookups O(1) instead of an O(n) tuple build *and* an O(n) tuple
    hash per campaign.  The memo entry holds the keying object itself,
    so its ``id`` cannot be recycled while the entry lives.  Mutable
    lists never take the identity path (a caller could mutate between
    calls) and fall through to the content key, exactly as before.
    """
    if type(guesses) is tuple:
        entry = _PREPARED_CACHE.get(id(guesses))
        if type(entry) is tuple and entry[0] is guesses:
            return entry[1]
        key = guesses
    else:
        key = tuple(guesses)
    prepared = _PREPARED_CACHE.get(key)
    if not isinstance(prepared, _PreparedGuesses):
        prepared = _PreparedGuesses(key)
        _PREPARED_CACHE.put(key, prepared)
    if type(guesses) is tuple:
        _PREPARED_CACHE.put(id(guesses), (guesses, prepared))
    return prepared


def crack_records(
    records: list[StolenRecord],
    breach_time: SimInstant,
    guesses: list[str] | None = None,
) -> list[CrackedCredential]:
    """Run recovery over a haul; returns credentials with availability times."""
    if guesses is None:
        # The canonical mangled dictionary is one shared tuple, so the
        # prepared-guesses memo hits on identity for every campaign.
        guesses = _mangled_guesses()
    prepared = _prepared_for(guesses) if _perf.enabled() else None
    cracked: list[CrackedCredential] = []
    for record in records:
        if record.plaintext is not None:
            cracked.append(
                CrackedCredential(
                    site_host=record.site_host,
                    username=record.username,
                    email=record.email,
                    password=record.plaintext,
                    available_at=breach_time,
                )
            )
            continue
        delay = record.credential.storage.crack_delay_days * DAY
        recovered = _dictionary_attack(record, guesses, prepared)
        if recovered is not None:
            cracked.append(
                CrackedCredential(
                    site_host=record.site_host,
                    username=record.username,
                    email=record.email,
                    password=recovered,
                    available_at=breach_time + delay,
                )
            )
    return cracked


def _dictionary_attack(
    record: StolenRecord,
    guesses: list[str],
    prepared: _PreparedGuesses | None = None,
) -> str | None:
    if prepared is None:
        for guess in guesses:
            if record.credential.matches_guess(guess):
                return guess
        return None
    return _fast_dictionary_attack(record, prepared)


def _fast_dictionary_attack(
    record: StolenRecord, prepared: _PreparedGuesses
) -> str | None:
    """The prepared-guesses fast path, bit-identical to the naive scan.

    Same digest construction as :meth:`StoredCredential.verify`
    (``sha256(f"{scheme}|{salt}|{password}")``), just without the
    per-guess string formatting, method dispatch and hex encoding; the
    first-matching-guess semantics are preserved exactly.
    """
    credential = record.credential
    storage = credential.storage
    if storage.exposes_all_passwords:
        # The naive scan returns the first guess string-equal to the
        # stored plaintext — which is the plaintext itself.
        return credential.secret if credential.secret in prepared.guess_set() else None
    if storage is PasswordStorage.UNSALTED_MD5:
        return prepared.md5_table().get(credential.secret)
    scheme = b"bcrypt" if storage is PasswordStorage.STRONG_HASH else b"sha-salted"
    prefix = scheme + b"|" + credential.salt.encode("utf-8") + b"|"
    target = bytes.fromhex(credential.secret)
    sha256 = hashlib.sha256
    for index, encoded in enumerate(prepared.encoded):
        if sha256(prefix + encoded).digest() == target:
            return prepared.guesses[index]
    return None
