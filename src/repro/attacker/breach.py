"""Site breaches.

A breach either dumps (part of) the account database offline or
captures credentials online (key logging, a tapped registration
handler).  Online capture yields plaintext regardless of storage
policy — one of the two explanations for hard-password access in
Section 6.1.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs import NO_OP
from repro.util.timeutil import SimInstant
from repro.web.passwords import StoredCredential
from repro.web.site import Website


class BreachMethod(enum.Enum):
    """How the attacker got in."""

    DB_DUMP = "db_dump"  # offline copy of the account database
    ONLINE_CAPTURE = "online_capture"  # plaintext capture at login/registration


@dataclass(frozen=True)
class StolenRecord:
    """One account row as the attacker holds it."""

    site_host: str
    username: str
    email: str
    credential: StoredCredential
    plaintext: str | None  # known immediately only for online capture


@dataclass(frozen=True)
class BreachEvent:
    """A scheduled compromise of one site."""

    site_host: str
    time: SimInstant
    method: BreachMethod
    exposed_shards: frozenset[int] | None = None  # None → all shards

    def describe(self) -> str:
        """One-line summary for event logs."""
        shards = "all shards" if self.exposed_shards is None else f"shards {sorted(self.exposed_shards)}"
        return f"{self.site_host} via {self.method.value} ({shards})"


def execute_breach(site: Website, event: BreachEvent, obs=NO_OP) -> list[StolenRecord]:
    """Produce the attacker's haul from one breach.

    For a database dump, the haul is the stored credentials of the
    exposed shards.  For online capture, every account's password is
    recovered in plaintext (the capture point sees what users type) —
    the site's storage policy is bypassed entirely.
    """
    with obs.span("attacker.breach", host=site.spec.host, method=event.method.value):
        shards = set(event.exposed_shards) if event.exposed_shards is not None else None
        accounts = site.accounts.dump_shards(shards)
        records = []
        for account in accounts:
            if event.method is BreachMethod.ONLINE_CAPTURE:
                plaintext = site.observed_plaintext(account.username)
            else:
                plaintext = account.credential.recover_directly()
            records.append(
                StolenRecord(
                    site_host=site.spec.host,
                    username=account.username,
                    email=account.email,
                    credential=account.credential,
                    plaintext=plaintext,
                )
            )
        obs.count("attacker.breaches")
        obs.count("attacker.records_stolen", len(records))
        obs.get_logger("attacker.breach").info(event.describe(), stolen=len(records))
    return records
