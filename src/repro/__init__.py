"""Tripwire: inferring internet site compromise — full reproduction.

This package reproduces the system described in DeBlasio, Savage, Voelker
and Snoeren, *"Tripwire: Inferring Internet Site Compromise"* (IMC 2017).

The paper's measurement pipeline registers honey accounts at third-party
websites, reusing each website password as the password of a unique email
account at a major provider.  Any successful login to one of those email
accounts is then strong evidence that credentials leaked from the
corresponding website.

Because the real substrate (the public web, a partner email provider and
live attackers) is not available offline, this reproduction implements
simulated equivalents that exercise the same code paths:

- :mod:`repro.html` / :mod:`repro.net` — an HTML/DOM substrate and a
  simulated IPv4 internet (WHOIS, DNS, HTTP transport, proxies).
- :mod:`repro.web` — a generative population of websites with real HTML
  registration pages, account databases and password-storage policies.
- :mod:`repro.email_provider` / :mod:`repro.mail` — the partner email
  provider (accounts, login telemetry, abuse handling) and the
  researchers' mail server (forwarding, verification-link handling).
- :mod:`repro.identity` / :mod:`repro.crawler` — Tripwire's identity
  factory and the automated registration crawler (Figure 1 control flow).
- :mod:`repro.attacker` — breaches, offline cracking and password-reuse
  credential-checking botnets.
- :mod:`repro.core` — the Tripwire orchestrator: registration campaigns,
  monitoring, compromise inference and success estimation.
- :mod:`repro.analysis` — builders for every table and figure in the
  paper's evaluation.

See ``DESIGN.md`` for the full inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.version import __version__

__all__ = ["__version__"]
