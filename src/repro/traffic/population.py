"""The benign account population: deterministic, storage-free identity.

A benign user is fully determined by their index: local part, password
and home IP are arithmetic functions of ``i`` (a Knuth multiplicative
hash spreads the bits), so a 10^6-user population costs the provider's
columns and nothing else — the traffic generator re-derives credentials
on the fly instead of holding a second copy of a million strings.

Benign locals live in their own ``bg…`` namespace: policy-clean,
lowercase, collision-free against both Tripwire's generated identities
(which never use the ``bg`` stem) and each other, which is what lets
registration take the bulk :meth:`~repro.email_provider.accounts.
AccountTable.extend` path with the per-row checks hoisted out.
"""

from __future__ import annotations

#: Knuth's multiplicative hash constant; spreads consecutive indices.
_MIX = 2654435761
_MASK32 = 0xFFFFFFFF


def benign_local(i: int) -> str:
    """Local part of benign user ``i`` (lowercase, policy-clean)."""
    return "bg%08d" % i


def benign_password(i: int) -> str:
    """Password of benign user ``i`` (derived, never brute-forceable
    by the simulated attackers, who only target honey identities)."""
    return "bg-pw-%08x" % ((i * _MIX) & _MASK32)


def benign_home_ip(i: int) -> int:
    """Home IP of benign user ``i``, as a 32-bit integer.

    Confined to 96.0.0.0/3 so benign sources never collide with the
    attacker proxy pools or Tripwire's probe addresses.
    """
    return 0x60000000 | ((i * _MIX) & 0x1FFFFFFF)


class BenignPopulation:
    """A sized benign population, registrable with one provider call.

    The credential caches built for registration are kept and shared
    with the traffic generator, so the population's strings exist once
    — the provider's columns and the generator's lookup tables hold
    references to the same objects.
    """

    __slots__ = ("size", "first_row", "_locals", "_passwords", "_home_ips")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("population size must be non-negative")
        self.size = size
        #: Provider row of user 0, set by :meth:`register_with`.
        self.first_row: int | None = None
        self._locals: list[str] | None = None
        self._passwords: list[str] | None = None
        self._home_ips = None

    def credentials(self) -> tuple[list[str], list[str]]:
        """(locals, passwords) lookup tables, built once, cached."""
        if self._locals is None:
            self._locals = [benign_local(i) for i in range(self.size)]
            self._passwords = [benign_password(i) for i in range(self.size)]
        return self._locals, self._passwords

    def home_ips(self):
        """Per-user home IP table (``array('Q')``), built once, cached."""
        if self._home_ips is None:
            from array import array

            self._home_ips = array(
                "Q", [benign_home_ip(i) for i in range(self.size)]
            )
        return self._home_ips

    def register_with(self, provider) -> int:
        """Bulk-register every user; returns the first row index.

        Registration is idempotent per provider (second calls would
        collide); callers register once at world build time.
        """
        locals_lower, passwords = self.credentials()
        self.first_row = provider.register_benign_accounts(locals_lower, passwords)
        return self.first_row

    def local(self, i: int) -> str:
        return benign_local(i)

    def password(self, i: int) -> str:
        return benign_password(i)

    def home_ip(self, i: int) -> int:
        return benign_home_ip(i)
