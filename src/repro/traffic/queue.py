"""A bounded, deterministic backpressure queue for login batches.

The hand-off between the traffic generator and the batch login engine:
the producer ``offer``\\ s batches until the queue refuses (bounded
depth — a window of a million events must not materialize as a million
queued objects), then the consumer drains.  The queue is deliberately
single-threaded and deterministic: the simulation's event loop *is*
the scheduler, so backpressure here means "the producer stops
generating until the engine catches up", not thread blocking — and the
drain order (FIFO) is part of the journal-byte contract.

:meth:`pump` packages the fill-until-refused / drain-until-empty cycle
the lifecycle stream runs each window, and the stall/depth counters
record how hard the queue worked without perturbing any decision.
"""

from __future__ import annotations

from collections import deque


class BackpressureQueue:
    """Bounded FIFO of pending login batches."""

    __slots__ = ("max_depth", "_items", "offered", "refused", "taken", "peak_depth")

    def __init__(self, max_depth: int = 8):
        if max_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.max_depth = max_depth
        self._items: deque = deque()
        self.offered = 0
        self.refused = 0
        self.taken = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, item) -> bool:
        """Enqueue unless full; False signals backpressure."""
        if len(self._items) >= self.max_depth:
            self.refused += 1
            return False
        self._items.append(item)
        self.offered += 1
        depth = len(self._items)
        if depth > self.peak_depth:
            self.peak_depth = depth
        return True

    def take(self):
        """Dequeue the oldest item, or None when empty."""
        if not self._items:
            return None
        self.taken += 1
        return self._items.popleft()

    def stats(self) -> dict:
        """The accounting counters as a plain dict (flight snapshots).

        These counters are decided by the sim — producer batch sizes
        and drain order are deterministic — so they are safe to embed
        in executor-invariant snapshot bytes.
        """
        return {
            "depth": len(self._items),
            "max_depth": self.max_depth,
            "offered": self.offered,
            "refused": self.refused,
            "taken": self.taken,
            "peak_depth": self.peak_depth,
        }

    def pump(self, producer, consume) -> int:
        """Run one full produce/consume cycle through the queue.

        ``producer`` is an iterator of items; ``consume`` is called
        with each item in FIFO order.  Items flow strictly through the
        bounded queue: fill until the queue refuses, drain one to make
        room, repeat; then drain the tail.  Returns how many items
        were consumed.
        """
        consumed = 0
        for item in producer:
            while not self.offer(item):
                pending = self.take()
                if pending is None:  # pragma: no cover - depth >= 1
                    break
                consume(pending)
                consumed += 1
        while True:
            pending = self.take()
            if pending is None:
                break
            consume(pending)
            consumed += 1
        return consumed
