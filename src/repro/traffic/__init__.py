"""Benign-population load: the haystack the honey accounts hide in.

Tripwire's premise is that its telemetry signal must be sifted out of a
provider serving "hundreds of millions of other accounts" (Section
4.2/4.4).  This package supplies that noise floor at simulation scale:

- :mod:`population` mints a deterministic benign account population
  (locals, passwords, home IPs derived arithmetically from the index —
  no per-account RNG state, no storage beyond the provider's columns);
- :mod:`generator` streams seeded login/mail windows as
  :class:`~repro.email_provider.batch.LoginBatch` columns, millions of
  events per sim-day;
- :mod:`queue` bounds the hand-off between generator and login engine
  with a deterministic backpressure queue.

Everything is seeded per *window index*, so a resumed or re-sharded
run regenerates byte-identical traffic.
"""

from repro.traffic.population import BenignPopulation
from repro.traffic.generator import TrafficGenerator, TrafficProfile, TrafficWindow
from repro.traffic.queue import BackpressureQueue

__all__ = [
    "BenignPopulation",
    "TrafficGenerator",
    "TrafficProfile",
    "TrafficWindow",
    "BackpressureQueue",
]
