"""Seeded benign login/mail traffic, generated in batch-window columns.

The generator turns a :class:`~repro.traffic.population.
BenignPopulation` into the provider's ambient load: every
``window_seconds`` of sim time it emits one :class:`TrafficWindow` —
login attempts as ready-to-authenticate
:class:`~repro.email_provider.batch.LoginBatch` columns plus a list of
mail recipients — at a rate of ``users * logins_per_user_day``
events per sim-day.

Determinism is per *window index*: window ``k`` draws from its own
``rng_tree.child("traffic", str(k))`` stream, so windows can be
generated in any order (resume, re-sharding) and always reproduce the
same events, and the stream consumed by one window never shifts its
neighbours.  Draw order inside a window is part of the contract:
login count, mail count, then per event user/outcome/source, then the
method column.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.email_provider.batch import LoginBatch
from repro.email_provider.telemetry import METHOD_CODES, LoginMethod
from repro.traffic.population import BenignPopulation
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY, HOUR, SimInstant

#: What a benign login fails with — any wrong string yields
#: BAD_PASSWORD; a shared constant keeps the column cheap.
WRONG_PASSWORD = "bg-wrong-guess"

#: Access-method mix for benign users: webmail-heavy, a quarter IMAP
#: sync clients, a tail of mobile/SMTP/legacy-POP3.  Cumulative
#: thresholds over METHOD_CODES, consulted with one random() per event.
_METHOD_MIX: tuple[tuple[float, int], ...] = (
    (0.45, METHOD_CODES[LoginMethod.WEBMAIL]),
    (0.70, METHOD_CODES[LoginMethod.IMAP]),
    (0.85, METHOD_CODES[LoginMethod.ACTIVESYNC]),
    (0.95, METHOD_CODES[LoginMethod.SMTP]),
    (1.01, METHOD_CODES[LoginMethod.POP3]),
)


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of the benign load.

    Every field except ``batch_events`` is sim-shaping — it alters
    which events exist, so it belongs in the service config's
    ``sim_meta``.  ``batch_events`` only *groups* a window's events
    into bounded columns without reordering them, so like the
    batched/per-event choice it may vary without moving a journal
    byte."""

    users: int
    logins_per_user_day: float = 2.0
    mails_per_user_day: float = 0.0
    window_seconds: int = 6 * HOUR
    #: Fraction of benign logins with a mistyped password.
    bad_password_rate: float = 0.03
    #: Fraction of logins from a random (non-home) source address.
    roaming_rate: float = 0.05
    #: Maximum events per emitted LoginBatch; windows larger than this
    #: are split so the backpressure queue sees bounded items.
    batch_events: int = 8192

    def expected_logins_per_window(self) -> float:
        return self.users * self.logins_per_user_day * (self.window_seconds / DAY)

    def expected_mails_per_window(self) -> float:
        return self.users * self.mails_per_user_day * (self.window_seconds / DAY)


class TrafficWindow:
    """One generated window: login batches plus mail recipients."""

    __slots__ = ("index", "close_time", "batches", "mail_users")

    def __init__(
        self,
        index: int,
        close_time: SimInstant,
        batches: list[LoginBatch],
        mail_users: list[int],
    ):
        self.index = index
        self.close_time = close_time
        self.batches = batches
        self.mail_users = mail_users

    @property
    def login_count(self) -> int:
        return sum(len(b) for b in self.batches)


class TrafficGenerator:
    """Streams deterministic traffic windows for one population."""

    def __init__(
        self,
        profile: TrafficProfile,
        population: BenignPopulation,
        rng_tree: RngTree,
    ):
        if population.size != profile.users:
            raise ValueError("population size must match profile.users")
        self._profile = profile
        self._population = population
        self._tree = rng_tree.child("traffic")

    def window(self, index: int, close_time: SimInstant) -> TrafficWindow:
        """Generate window ``index``, whose events occur at ``close_time``."""
        profile = self._profile
        rng = self._tree.child(str(index)).rng()
        login_count = _bernoulli_round(profile.expected_logins_per_window(), rng)
        mail_count = _bernoulli_round(profile.expected_mails_per_window(), rng)

        locals_table, passwords_table = self._population.credentials()
        home_ips = self._population.home_ips()
        users = profile.users
        bad_rate = profile.bad_password_rate
        roam_rate = profile.roaming_rate
        randrange = rng.randrange
        random = rng.random
        getrandbits = rng.getrandbits

        # When the population is already registered the generator knows
        # each event's provider row outright (first_row + u) and ships
        # it on the batch, sparing the engine one index probe per event
        # — the probe is a cold hash lookup at the 10^6 stratum.
        first_row = self._population.first_row
        keys: list[str] = []
        passwords: list[str] = []
        ips = array("Q")
        rows = array("q") if first_row is not None else None
        keys_append = keys.append
        passwords_append = passwords.append
        ips_append = ips.append
        rows_append = rows.append if rows is not None else None
        for _ in range(login_count):
            u = randrange(users)
            keys_append(locals_table[u])
            passwords_append(
                WRONG_PASSWORD if random() < bad_rate else passwords_table[u]
            )
            ips_append(
                0x60000000 | getrandbits(29)
                if random() < roam_rate
                else home_ips[u]
            )
            if rows_append is not None:
                rows_append(first_row + u)
        methods = bytearray(login_count)
        mix = _METHOD_MIX
        for i in range(login_count):
            roll = random()
            for threshold, code in mix:
                if roll < threshold:
                    methods[i] = code
                    break

        mail_users = [randrange(users) for _ in range(mail_count)]

        step = profile.batch_events
        if login_count <= step:
            batches = (
                [LoginBatch(keys, passwords, ips, methods, rows)]
                if login_count
                else []
            )
        else:
            batches = [
                LoginBatch(
                    keys[start : start + step],
                    passwords[start : start + step],
                    ips[start : start + step],
                    bytearray(methods[start : start + step]),
                    rows[start : start + step] if rows is not None else None,
                )
                for start in range(0, login_count, step)
            ]
        return TrafficWindow(index, close_time, batches, mail_users)


def _bernoulli_round(expected: float, rng) -> int:
    """Round a rate to an integer count, preserving the mean.

    ``floor(expected)`` plus one with probability ``frac`` — cheap,
    deterministic under the window's own stream, and mean-preserving
    so long runs deliver the configured events-per-day.
    """
    base = int(expected)
    frac = expected - base
    if frac and rng.random() < frac:
        base += 1
    return base
