"""Simulated time.

The study spans July 2014 through February 2017.  All simulated events
carry a :class:`SimInstant` — an integer number of seconds since the Unix
epoch (UTC).  Using plain integers keeps event ordering, arithmetic and
serialization trivial and avoids timezone pitfalls entirely.
"""

from __future__ import annotations

import datetime as _dt

SimInstant = int

MINUTE: int = 60
HOUR: int = 60 * MINUTE
DAY: int = 24 * HOUR
WEEK: int = 7 * DAY

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def instant_from_date(
    year: int, month: int, day: int, hour: int = 0, minute: int = 0, second: int = 0
) -> SimInstant:
    """Build a :class:`SimInstant` from a UTC calendar date."""
    moment = _dt.datetime(year, month, day, hour, minute, second, tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH).total_seconds())


def instant_to_datetime(instant: SimInstant) -> _dt.datetime:
    """Convert an instant back to an aware UTC datetime."""
    return _EPOCH + _dt.timedelta(seconds=instant)


def format_instant(instant: SimInstant, with_time: bool = False) -> str:
    """Render an instant as ``YYYY-MM-DD`` (optionally with ``HH:MM:SS``)."""
    moment = instant_to_datetime(instant)
    if with_time:
        return moment.strftime("%Y-%m-%d %H:%M:%S")
    return moment.strftime("%Y-%m-%d")


def day_of(instant: SimInstant) -> SimInstant:
    """Truncate an instant to midnight of its UTC day."""
    return instant - (instant % DAY)


def days_between(start: SimInstant, end: SimInstant) -> int:
    """Whole calendar days between two instants (end - start).

    Matches the paper's "days until first access" accounting: the
    difference of the two UTC day numbers, which may be negative when
    ``end`` precedes ``start``.
    """
    return (day_of(end) - day_of(start)) // DAY


def month_label(instant: SimInstant) -> str:
    """Short ``M/YY`` label used on the Figure 2 time axis."""
    moment = instant_to_datetime(instant)
    return f"{moment.month}/{moment.strftime('%y')}"


# Landmarks of the pilot study (Section 5 / Figure 2).
STUDY_START: SimInstant = instant_from_date(2014, 7, 1)
SEED_CRAWL_START: SimInstant = instant_from_date(2014, 12, 1)
MAIN_CRAWL_START: SimInstant = instant_from_date(2015, 1, 15)
MAIN_CRAWL_END: SimInstant = instant_from_date(2015, 3, 31)
TOP30K_CRAWL_START: SimInstant = instant_from_date(2015, 11, 20)
MANUAL_CRAWL_START: SimInstant = instant_from_date(2016, 5, 10)
LOG_GAP_START: SimInstant = instant_from_date(2015, 3, 20)
LOG_GAP_END: SimInstant = instant_from_date(2015, 6, 1)
STUDY_END: SimInstant = instant_from_date(2017, 2, 1)
