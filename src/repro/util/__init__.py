"""Shared utilities: deterministic RNG trees, simulated time, text, tables."""

from repro.util.rngtree import RngTree, weighted_choice
from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    SimInstant,
    days_between,
    format_instant,
    instant_from_date,
)
from repro.util.tables import render_table

__all__ = [
    "RngTree",
    "weighted_choice",
    "SimInstant",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "instant_from_date",
    "format_instant",
    "days_between",
    "render_table",
]
