"""Plain-text table rendering for the analysis and benchmark output.

The paper's evaluation is delivered as tables and figures; the analysis
modules emit rows of cells and this renderer turns them into aligned
ASCII suitable for terminals and the ``EXPERIMENTS.md`` record.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(
    headers: Sequence[object],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align_right: Sequence[int] = (),
) -> str:
    """Render a table with a header rule.

    ``align_right`` lists column indices to right-align (numeric columns);
    all other columns are left-aligned.
    """
    header_cells = [_cell(h) for h in headers]
    body = [[_cell(c) for c in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_cells)}: {row!r}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    right = set(align_right)

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i in right:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)


def percent(part: float, whole: float, digits: int = 1) -> str:
    """Format ``part/whole`` as a percentage string; '-' when whole is 0."""
    if whole == 0:
        return "-"
    return f"{100.0 * part / whole:.{digits}f}%"
