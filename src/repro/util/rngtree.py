"""Deterministic random-number trees.

Every stochastic component in the reproduction draws randomness from a
:class:`RngTree` rather than the global :mod:`random` state.  A tree is
seeded once; children are derived from the parent seed plus a label path
by hashing, so that:

- the whole simulation is reproducible from a single integer seed, and
- adding a new consumer of randomness (a new site, a new attacker) does
  not perturb the random streams of existing consumers, because each
  consumer's stream depends only on its own label path.

Example::

    tree = RngTree(42)
    site_rng = tree.child("web", "site", 1337).rng()
    site_rng.random()
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

_HASH_BYTES = 16


def _derive_seed(seed: int, labels: tuple[object, ...]) -> int:
    """Derive a child seed from a parent seed and a label path."""
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:_HASH_BYTES], "big")


class RngTree:
    """A node in a deterministic tree of random-number generators.

    Each node is identified by a root seed and a path of labels.  Nodes
    are cheap value objects; the underlying :class:`random.Random` is
    created lazily by :meth:`rng`.
    """

    __slots__ = ("_seed", "_path")

    def __init__(self, seed: int, _path: tuple[object, ...] = ()):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._path = _path

    @property
    def seed(self) -> int:
        """Root seed of the tree this node belongs to."""
        return self._seed

    @property
    def path(self) -> tuple[object, ...]:
        """Label path from the root to this node."""
        return self._path

    def child(self, *labels: object) -> "RngTree":
        """Return the child node at ``labels`` below this node."""
        if not labels:
            raise ValueError("child() requires at least one label")
        return RngTree(self._seed, self._path + labels)

    def derived_seed(self) -> int:
        """The integer seed that this node's RNG is seeded with."""
        return _derive_seed(self._seed, self._path)

    def rng(self) -> random.Random:
        """Return a fresh :class:`random.Random` seeded for this node.

        Repeated calls return independent generator objects with the
        same seed, hence identical streams.
        """
        return random.Random(self.derived_seed())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "/".join(str(p) for p in self._path)
        return f"RngTree(seed={self._seed}, path={path!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RngTree):
            return NotImplemented
        return self._seed == other._seed and self._path == other._path

    def __hash__(self) -> int:
        return hash((self._seed, self._path))


def weighted_choice(rng: random.Random, options: Sequence[tuple[T, float]]) -> T:
    """Pick one option according to non-negative weights.

    ``options`` is a sequence of ``(value, weight)`` pairs.  Weights need
    not sum to one.  Raises :class:`ValueError` on an empty sequence or
    when all weights are zero or negative.
    """
    if not options:
        raise ValueError("weighted_choice() requires at least one option")
    total = 0.0
    for _value, weight in options:
        if weight < 0:
            raise ValueError(f"negative weight {weight!r}")
        total += weight
    if total <= 0:
        raise ValueError("all weights are zero")
    point = rng.random() * total
    cumulative = 0.0
    for value, weight in options:
        cumulative += weight
        if point < cumulative:
            return value
    # Floating-point slack: fall back to the last positive-weight option.
    for value, weight in reversed(options):
        if weight > 0:
            return value
    raise AssertionError("unreachable")  # pragma: no cover


def sample_distinct(rng: random.Random, population: Iterable[T], k: int) -> list[T]:
    """Sample ``k`` distinct items (or all of them if fewer exist)."""
    items = list(population)
    if k >= len(items):
        rng.shuffle(items)
        return items
    return rng.sample(items, k)
