"""Quickstart: detect a site compromise end to end in a tiny world.

Builds the full measurement stack (simulated internet, email provider,
crawler), registers honey accounts at a handful of sites, breaches one
of them, lets the attacker run a password-reuse check, and shows the
monitor attributing the resulting email login back to the breached site.

Run:  python examples/quickstart.py
"""

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.breach import BreachEvent, BreachMethod, execute_breach
from repro.attacker.checker import CredentialChecker
from repro.attacker.cracking import crack_records
from repro.attacker.profiles import CheckerArchetype, CheckerProfile
from repro.core.campaign import RegistrationCampaign
from repro.core.monitor import CompromiseMonitor
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.util.timeutil import DAY, format_instant


def main() -> None:
    # 1. Wire the world: 40 ranked sites, an email provider, the crawler.
    system = TripwireSystem(seed=2017, population_size=40)
    system.provision_identities(40, PasswordClass.HARD)
    system.provision_identities(20, PasswordClass.EASY)
    system.provision_control_accounts(2)

    # 2. Register honey accounts across the top of the ranking.
    campaign = RegistrationCampaign(system)
    campaign.run_batch(system.population.alexa_top(30))
    exposed = campaign.exposed_attempts()
    print(f"registration attempts: {len(campaign.attempts)}, "
          f"identities exposed (burned): {len(exposed)}")

    # 3. Pick a site where an account really exists and breach it.
    target = None
    for attempt in exposed:
        site = system.population.site_by_host(attempt.site_host)
        if site and site.accounts.lookup(attempt.identity.email_address):
            target = site
            break
    if target is None:
        raise SystemExit("no usable registration this seed — try another")
    print(f"breaching {target.spec.host!r} "
          f"(storage: {target.spec.password_storage})")
    target.seed_organic_accounts(30)
    breach = BreachEvent(target.spec.host, system.clock.now() + 30 * DAY,
                         BreachMethod.ONLINE_CAPTURE)
    stolen = execute_breach(target, breach)
    cracked = crack_records(stolen, breach.time)
    print(f"stolen rows: {len(stolen)}, credentials recovered: {len(cracked)}")

    # 4. The attacker tests recovered credentials at the email provider.
    botnet = BotnetProxyNetwork(system.whois, system.tree.child("botnet").rng())
    checker = CredentialChecker(system.provider, botnet, system.queue,
                                system.tree.child("checker").rng())
    profile = CheckerProfile(archetype=CheckerArchetype.VERIFIER,
                             initial_delay_days=20, session_count=2,
                             period_days=10, multi_ip_burst_prob=0.0,
                             hammer_prob=0.0)
    checker.launch(cracked, profile)

    # 5. Collect the provider's sporadic dumps and infer the compromise.
    #    Dumps must come at least once per retention window (60 days) —
    #    the paper lost ten weeks of logins to exactly this (§6, Fig. 2).
    monitor = CompromiseMonitor(system.pool, system.control_locals,
                                system.provider.domain)
    for _ in range(4):
        system.queue.run_until(system.clock.now() + 40 * DAY)
        monitor.ingest_dump(system.provider.collect_login_dump())
    print(f"\nintegrity alarms: {len(monitor.alarms)} (must be 0)")
    for detection in monitor.detected_sites():
        print(f"DETECTED: {detection.site_host}")
        print(f"  first login observed: {format_instant(detection.first_login_time)}")
        print(f"  accounts accessed:    {len(detection.accounts_accessed)}")
        print(f"  inference:            {detection.storage_inference()}")
    if not monitor.detections:
        print("no detections (attacker may have skipped the honey account)")


if __name__ == "__main__":
    main()
