"""Attacker evasion strategies vs detection odds (Section 7.3).

Two knobs an informed attacker controls:

1. **Credential sampling** — test only a fraction of the stolen haul at
   the email provider.  Detection odds fall roughly linearly with the
   fraction tested ("the odds of detection are inversely proportional
   to the percentage of email accounts tested").
2. **Provider avoidance** — skip the monitored provider entirely.
   Detection drops to zero, but so does the most valuable slice of the
   haul (major-provider accounts dominate breached credential dumps).

Run:  python examples/evasion_analysis.py
"""

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.breach import BreachEvent, BreachMethod, execute_breach
from repro.attacker.checker import CredentialChecker
from repro.attacker.cracking import crack_records
from repro.attacker.profiles import CheckerArchetype, CheckerProfile
from repro.core.campaign import RegistrationCampaign
from repro.core.monitor import CompromiseMonitor
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.util.rngtree import RngTree
from repro.util.tables import render_table
from repro.util.timeutil import DAY


def detection_outcome(test_fraction: float, avoid_provider: bool, seed: int) -> tuple[bool, int]:
    """One trial: was the breach detected, and how many logins occurred?"""
    system = TripwireSystem(seed=seed, population_size=30)
    system.crawler.config.system_error_rate = 0.0
    system.provision_identities(30, PasswordClass.HARD)
    system.provision_identities(15, PasswordClass.EASY)
    campaign = RegistrationCampaign(system)
    campaign.run_batch(system.population.alexa_top(20))

    target = None
    for attempt in campaign.exposed_attempts():
        site = system.population.site_by_host(attempt.site_host)
        if site and site.accounts.lookup(attempt.identity.email_address):
            target = site
            break
    if target is None:
        return False, 0

    target.seed_organic_accounts(60)
    breach_time = system.clock.now() + 5 * DAY
    stolen = execute_breach(
        target, BreachEvent(target.spec.host, breach_time, BreachMethod.ONLINE_CAPTURE))
    cracked = crack_records(stolen, breach_time)

    avoided = frozenset({system.provider.domain}) if avoid_provider else frozenset()
    botnet = BotnetProxyNetwork(system.whois, system.tree.child("botnet").rng())
    checker = CredentialChecker(system.provider, botnet, system.queue,
                                RngTree(seed).child("checker").rng(),
                                test_fraction=test_fraction,
                                avoided_domains=avoided)
    profile = CheckerProfile(archetype=CheckerArchetype.VERIFIER,
                             initial_delay_days=3, session_count=1,
                             period_days=5, multi_ip_burst_prob=0.0,
                             hammer_prob=0.0)
    checker.launch(cracked, profile)

    monitor = CompromiseMonitor(system.pool, system.control_locals,
                                system.provider.domain)
    for _ in range(2):
        system.queue.run_until(system.clock.now() + 30 * DAY)
        monitor.ingest_dump(system.provider.collect_login_dump())
    return target.spec.host in monitor.detections, checker.total_login_attempts


def main() -> None:
    trials = 30
    rows = []
    for fraction in (1.0, 0.5, 0.25, 0.1, 0.0):
        detected = sum(
            detection_outcome(fraction, avoid_provider=False, seed=1000 + t)[0]
            for t in range(trials)
        )
        rows.append([f"test {fraction:.0%} of haul", f"{detected}/{trials}",
                     f"{detected / trials:.0%}"])
    detected_avoiding = sum(
        detection_outcome(1.0, avoid_provider=True, seed=2000 + t)[0]
        for t in range(trials)
    )
    rows.append(["avoid the monitored provider", f"{detected_avoiding}/{trials}",
                 f"{detected_avoiding / trials:.0%}"])
    print(render_table(
        ["Attacker strategy", "Breaches detected", "Detection rate"], rows,
        title="Section 7.3: evasion strategy vs Tripwire detection odds",
    ))
    print("\nNote: avoiding the provider costs the attacker the most\n"
          "monetizable accounts in the haul — evasion is not free.")


if __name__ == "__main__":
    main()
