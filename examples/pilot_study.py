"""Reproduce the paper's year-long pilot study and print every table/figure.

The default scale is roughly 10% of the paper's (3,000-site population
vs ~30,000 URLs); pass a scale factor to change it:

    python examples/pilot_study.py           # ~10% scale, < 1 minute
    python examples/pilot_study.py 0.5       # half-paper scale
    python examples/pilot_study.py 1.0       # full paper scale (slow)
"""

import sys
import time

from repro.analysis import (
    build_attacker_ip_report,
    build_fig1,
    build_fig2,
    build_fig3,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    render_attacker_ip_report,
    render_fig1,
    render_fig2,
    render_fig3,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.scenario import PilotScenario, ScenarioConfig


def config_for_scale(scale: float) -> ScenarioConfig:
    """The paper's pilot sizes multiplied by ``scale``."""
    def scaled(paper_value: int, minimum: int = 10) -> int:
        return max(minimum, int(paper_value * scale))

    return ScenarioConfig(
        seed=2017,
        population_size=scaled(30000, minimum=400),
        seed_list_size=scaled(1000, minimum=50),
        main_crawl_top=scaled(25000, minimum=300),
        second_crawl_top=scaled(30000, minimum=400),
        manual_top=scaled(500, minimum=20),
        breach_count=21,  # a couple above 19: sharded dumps can miss
        breach_hard_exposing=11,
        unused_account_count=scaled(100000 // 50, minimum=200),
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    config = config_for_scale(scale)
    print(f"running pilot at scale {scale:.2f} "
          f"(population {config.population_size}, "
          f"crawl {config.main_crawl_top}+{config.second_crawl_top})...\n")
    started = time.time()
    result = PilotScenario(config).run()
    print(f"pilot finished in {time.time() - started:.1f}s wall time\n")

    print(render_table1(build_table1(result.estimates)), "\n")
    print(render_table2(build_table2(result)), "\n")
    print(render_table3(build_table3(result)), "\n")
    survey_ranks = tuple(
        r for r in (1, 1000, 10000) if r + 99 <= config.population_size
    ) or (1,)
    print(render_table4(build_table4(result.system.population, survey_ranks)), "\n")
    print(render_fig1(build_fig1(result.campaign.attempts)), "\n")
    print(render_fig2(build_fig2(result)), "\n")
    print(render_fig3(build_fig3(result)), "\n")
    print(render_attacker_ip_report(build_attacker_ip_report(result)), "\n")

    print("ground truth vs detection:")
    print(f"  sites breached:  {len(result.breaches)}")
    print(f"  sites detected:  {len(result.detected_hosts)} "
          f"(paper: 19 over ~2,300 monitored sites)")
    print(f"  integrity alarms: {len(result.monitor.alarms)} (must be 0)")
    print(f"  disclosure: {result.disclosure.summary()}")


if __name__ == "__main__":
    main()
