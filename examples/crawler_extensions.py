"""The crawler extensions the paper proposed but never built.

Section 7.2 names multi-language support as "the single greatest
improvement to the crawler's coverage", and §6.2.2 suggests search
engines could locate registration pages the crawler cannot.  Both are
implemented here; this example crawls the same ranked batch three ways
and shows the coverage gained at each step.

Run:  python examples/crawler_extensions.py [sites]
"""

import sys
from collections import Counter

from repro.core.campaign import RegistrationCampaign
from repro.core.system import TripwireSystem
from repro.crawler.engine import CrawlerConfig
from repro.identity.passwords import PasswordClass
from repro.search import SearchEngine
from repro.util.tables import render_table


def crawl_batch(sites: int, languages: tuple[str, ...], use_search: bool):
    """One campaign over the top-``sites`` batch; returns statistics."""
    config = CrawlerConfig(system_error_rate=0.0,
                           enabled_languages=frozenset(languages))
    system = TripwireSystem(seed=606, population_size=sites,
                            crawler_config=config)
    if use_search:
        system.crawler._search = SearchEngine(system.transport)
    system.provision_identities(sites + 50, PasswordClass.HARD)
    system.provision_identities(sites // 2 + 25, PasswordClass.EASY)
    campaign = RegistrationCampaign(system, second_hard_probability=0.0)
    campaign.run_batch(system.population.alexa_top(sites))

    codes = Counter(a.outcome.code.value for a in campaign.attempts)
    valid_sites = set()
    for attempt in campaign.exposed_attempts():
        site = system.population.site_by_host(attempt.site_host)
        if site and site.check_credentials(attempt.identity.email_address,
                                           attempt.identity.password):
            valid_sites.add(attempt.site_host)
    return codes, len(valid_sites)


def main() -> None:
    sites = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    configurations = [
        ("baseline (paper pilot)", (), False),
        ("+ language packs de/es/fr", ("de", "es", "fr"), False),
        ("+ packs + search engine", ("de", "es", "fr"), True),
    ]
    rows = []
    for name, languages, use_search in configurations:
        codes, valid = crawl_batch(sites, languages, use_search)
        rows.append([
            name,
            codes.get("not_english", 0),
            codes.get("no_registration_found", 0),
            codes.get("ok_submission", 0),
            valid,
        ])
        print(f"ran: {name}")
    print()
    print(render_table(
        ["Configuration", "Language skips", "No form found",
         "OK submissions", "Sites w/ valid account"],
        rows,
        title=f"Crawler-extension coverage over the top-{sites} batch",
        align_right=(1, 2, 3, 4),
    ))
    print("\nThe paper (§7.2): non-English sites are >40% of the ranking and "
          "\nentirely unreachable to the English-only pilot crawler; search "
          "\nengines can recover the §6.2.2 'registration page not obvious' misses.")


if __name__ == "__main__":
    main()
