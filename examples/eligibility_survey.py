"""Site-eligibility survey and crawl funnel without any attacker.

Reproduces the measurement side of Sections 5 and 7.1 on a fresh
population: the 100-site manual eligibility survey (Table 4) and the
crawler funnel over a registration batch (Figures 1 and 3) — useful
when you only care about the automated-registration subsystem.

Run:  python examples/eligibility_survey.py [population_size]
"""

import sys
from collections import Counter

from repro.analysis.table4 import average_row, build_table4, render_table4
from repro.core.campaign import RegistrationCampaign
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.util.tables import percent, render_table


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    system = TripwireSystem(seed=41, population_size=size)

    # Table 4: the manual 100-site windows.
    starts = tuple(s for s in (1, 1000, 10000) if s + 99 <= size) or (1,)
    rows = build_table4(system.population, starts, 100)
    print(render_table4(rows))
    avg = average_row(rows)
    print(f"\neligible ('rest') share: {avg.rest:.1%} "
          "(paper: 31.3% average, declining with rank)\n")

    # A registration batch to populate the funnel.
    batch = min(size, 600)
    system.provision_identities(batch + 50, PasswordClass.HARD)
    system.provision_identities(batch // 2 + 25, PasswordClass.EASY)
    campaign = RegistrationCampaign(system)
    campaign.run_batch(system.population.alexa_top(batch))

    codes = Counter(a.outcome.code.value for a in campaign.attempts)
    total = sum(codes.values())
    print(render_table(
        ["Crawler outcome", "Count", "Share"],
        [[code, count, percent(count, total)] for code, count in codes.most_common()],
        title=f"Crawler outcomes over the top-{batch} batch",
        align_right=(1, 2),
    ))
    exposed = len(campaign.exposed_attempts())
    print(f"\nidentities burned: {exposed} "
          f"({percent(exposed, total)} of attempts reached the fill stage)")
    print(f"shared-backend URLs filtered before crawling: "
          f"{campaign.stats.sites_filtered}")


if __name__ == "__main__":
    main()
