"""Password-storage auditing via hard/easy account pairs (Section 6.1.2).

Pins three otherwise-identical sites to different storage policies —
plaintext, salted hash, strong hash — registers a hard and an easy
account at each, dumps all three databases, and shows how Tripwire's
detections distinguish the storage policies: hard-password access means
plaintext (or a reversible scheme); easy-only access means the database
leaked but hashing held.

Run:  python examples/password_audit.py
"""

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.breach import BreachEvent, BreachMethod, execute_breach
from repro.attacker.checker import CredentialChecker
from repro.attacker.cracking import crack_records
from repro.attacker.profiles import CheckerArchetype, CheckerProfile
from repro.core.campaign import RegistrationCampaign
from repro.core.monitor import CompromiseMonitor
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.util.timeutil import DAY
from repro.web.spec import BotCheck, EmailBehavior, LinkPlacement, RegistrationStyle

STORAGE_BY_RANK = {1: "plaintext", 2: "salted_hash", 3: "strong_hash"}


def pinned_site(host: str, storage: str) -> dict[str, object]:
    """A spec override for a friendly, fully-registrable site."""
    return {
        "bucket": "rest",
        "host": host,
        "language": "en",
        "load_fails": False,
        "registration_style": RegistrationStyle.SIMPLE,
        "link_placement": LinkPlacement.PROMINENT,
        "registration_path": "/signup",
        "anchor_text": "Sign up",
        "bot_check": BotCheck.NONE,
        "email_behavior": EmailBehavior.NOTHING,
        "extra_unlabeled_field": False,
        "requires_special_char": False,
        "shadow_ban_rate": 0.0,
        "max_email_length": None,
        "max_username_length": None,
        "password_storage": storage,
        "shard_count": 1,
    }


def main() -> None:
    overrides = {
        rank: pinned_site(f"{storage.replace('_', '-')}.example", storage)
        for rank, storage in STORAGE_BY_RANK.items()
    }
    system = TripwireSystem(seed=99, population_size=3, site_overrides=overrides,
                            crawler_config=None)
    system.crawler.config.system_error_rate = 0.0
    system.provision_identities(6, PasswordClass.HARD)
    system.provision_identities(6, PasswordClass.EASY)

    campaign = RegistrationCampaign(system, second_hard_probability=0.0)
    campaign.run_batch(system.population.alexa_top(3))
    print(f"registered {len(campaign.exposed_attempts())} honey accounts "
          f"across {len(STORAGE_BY_RANK)} sites\n")

    botnet = BotnetProxyNetwork(system.whois, system.tree.child("botnet").rng())
    checker = CredentialChecker(system.provider, botnet, system.queue,
                                system.tree.child("checker").rng())
    profile = CheckerProfile(archetype=CheckerArchetype.VERIFIER,
                             initial_delay_days=5, session_count=1,
                             period_days=10, multi_ip_burst_prob=0.0,
                             hammer_prob=0.0)

    breach_time = system.clock.now() + 10 * DAY
    for rank, storage in STORAGE_BY_RANK.items():
        site = system.population.site_at_rank(rank)
        stolen = execute_breach(
            site, BreachEvent(site.spec.host, breach_time, BreachMethod.DB_DUMP))
        cracked = crack_records(stolen, breach_time)
        checker.launch(cracked, profile)
        print(f"{site.spec.host:24s} storage={storage:12s} "
              f"rows={len(stolen)} recovered={len(cracked)}")

    monitor = CompromiseMonitor(system.pool, system.control_locals,
                                system.provider.domain)
    for _ in range(3):
        system.queue.run_until(system.clock.now() + 45 * DAY)
        monitor.ingest_dump(system.provider.collect_login_dump())

    print("\nTripwire's storage inference per detected site:")
    for detection in monitor.detected_sites():
        flag = "HARD+easy" if detection.hard_accessed else "easy only"
        print(f"  {detection.site_host:24s} accounts accessed: {flag:9s} "
              f"-> {detection.storage_inference()}")
    undetected = set(o["host"] for o in overrides.values()) - set(monitor.detections)
    for host in sorted(undetected):
        print(f"  {host:24s} no logins observed (hashing held, cracking "
              "outran the window, or no crackable account existed — §6.1.2)")


if __name__ == "__main__":
    main()
