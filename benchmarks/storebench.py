"""World-store throughput bench — writes ``BENCH_7.json``.

Builds disk-backed worlds at the 1k/10k/100k strata (the 10^6 stratum
rides behind ``--slow``) and records, per stratum:

- build sites/sec: streaming spec generation into segment pages;
- scan sites/sec: a full ``iter_specs`` pass decoding every page
  through the budgeted LRU cache;
- sampled-access seconds: one ``StrataSampler`` incidence pass, the
  access pattern the analysis builders actually use;
- on-disk bytes and the cache's peak resident bytes.

Everything here is **recorded, never gated**: sites/sec is a property
of the machine (recorded as ``cpu_count``).  The hard assertions are
correctness — the cache peak must stay within the configured budget,
and ranked listings off the store must match the in-memory population.

Run from the repo root::

    PYTHONPATH=src python benchmarks/storebench.py
    PYTHONPATH=src python benchmarks/storebench.py --slow   # adds 10^6
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

from repro.core.substrate import WorldShard
from repro.store import StrataSampler, build_world_store
from repro.util.rngtree import RngTree
from repro.util.tables import render_table

from _output import write_json, write_text

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_INDEX = 7
TRAJECTORY_PATH = REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"

SEED = 2017
STRATA = (1_000, 10_000, 100_000)
SLOW_STRATA = (1_000_000,)
#: Small enough that the 100k stratum must evict constantly.
BUDGET_BYTES = 4 * 1024 * 1024
#: Cross-check listing size: store ranked_top vs the in-memory world.
CHECK_TOP = 50


def run_stratum(population: int, workdir: pathlib.Path) -> dict:
    path = workdir / f"world_{population}"
    started = time.perf_counter()
    store = build_world_store(path, SEED, population,
                              budget_bytes=BUDGET_BYTES)
    build_seconds = time.perf_counter() - started
    try:
        disk_bytes = sum(
            f.stat().st_size for f in store.path.iterdir() if f.is_file()
        )

        started = time.perf_counter()
        scanned = sum(1 for _ in store.iter_specs())
        scan_seconds = time.perf_counter() - started
        assert scanned == population

        started = time.perf_counter()
        sampler = StrataSampler(SEED, population)
        sampler.incidence(store)
        sample_seconds = time.perf_counter() - started

        stats = store.cache_stats()
        assert stats.peak_bytes <= BUDGET_BYTES, (
            f"population={population}: cache peak {stats.peak_bytes} "
            f"exceeded budget {BUDGET_BYTES}"
        )
        return {
            "population": population,
            "build_seconds": round(build_seconds, 4),
            "build_sites_per_second": round(population / build_seconds, 1),
            "scan_seconds": round(scan_seconds, 4),
            "scan_sites_per_second": round(population / scan_seconds, 1),
            "sample_seconds": round(sample_seconds, 4),
            "disk_bytes": disk_bytes,
            "cache_peak_bytes": stats.peak_bytes,
            "cache_hit_rate": round(stats.hit_rate, 4),
        }
    finally:
        store.close()


def check_listings(workdir: pathlib.Path) -> None:
    """Smallest stratum doubles as the correctness cross-check."""
    from repro.store import open_world_store
    from repro.store.world import close_open_stores

    population = STRATA[0]
    listing = WorldShard(RngTree(SEED)).build_population(population)
    store = open_world_store(workdir / f"world_{population}")
    try:
        assert store.ranked_top(CHECK_TOP) == listing.alexa_top(CHECK_TOP), (
            "store ranked listing diverged from in-memory population"
        )
    finally:
        close_open_stores()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slow", action="store_true",
                        help="include the 10^6-site stratum")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_7.json")
    args = parser.parse_args(argv)

    strata = STRATA + (SLOW_STRATA if args.slow else ())
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="storebench_"))
    runs: dict[str, dict] = {}
    try:
        for population in strata:
            runs[str(population)] = run_stratum(population, workdir)
            run = runs[str(population)]
            print(f"population={population}: build "
                  f"{run['build_sites_per_second']} sites/s, scan "
                  f"{run['scan_sites_per_second']} sites/s",
                  file=sys.stderr)
        check_listings(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    rows = [
        [
            f"{run['population']:,}",
            f"{run['build_sites_per_second']:,.0f}",
            f"{run['scan_sites_per_second']:,.0f}",
            f"{run['sample_seconds']:.2f}",
            f"{run['disk_bytes'] / 1024 / 1024:.1f}",
            f"{run['cache_peak_bytes'] / 1024 / 1024:.1f}",
        ]
        for run in runs.values()
    ]
    table = render_table(
        ["Sites", "Build sites/s", "Scan sites/s", "Sample s",
         "Disk MiB", "Peak MiB"],
        rows,
        title="World-store throughput (recorded, never gated)",
    )
    print(table)

    payload = {
        "bench_index": BENCH_INDEX,
        "schema_version": 1,
        "slow": args.slow,
        "cpu_count": os.cpu_count() or 1,
        "budget_bytes": BUDGET_BYTES,
        "listings_identical": True,
        "runs": runs,
    }
    write_text("storebench", table)
    write_json("storebench", payload)
    if not args.no_write:
        TRAJECTORY_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {TRAJECTORY_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
