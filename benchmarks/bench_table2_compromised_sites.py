"""Table 2: summary of sites with detected login activity.

Regenerates the per-site compromise summary: anonymized letters,
accounts accessed vs registered, hard-password access flags, category
and rounded rank — the shape targets are the paper's 19 sites with
roughly half exposing hard passwords across a wide rank range.
"""

from repro.analysis.table2 import build_table2, render_table2


def test_table2_compromised_sites(benchmark, pilot, record):
    rows = benchmark(lambda: build_table2(pilot))
    record("table2_compromised_sites", render_table2(rows))

    assert len(rows) >= 10  # paper: 19 detected sites
    letters = [row.letter for row in rows]
    assert letters == sorted(letters)  # A, B, C ... by first login
    hard_exposed = sum(1 for row in rows if row.hard_accessed == "Y")
    hashed_only = sum(1 for row in rows if row.hard_accessed == "N")
    # Paper: 10 of 19 sites exposed hard passwords, 8 were hashed-only.
    assert hard_exposed >= 3
    assert hashed_only >= 3
    for row in rows:
        assert 1 <= row.accounts_accessed <= row.accounts_registered
        assert row.alexa_rank_rounded % 500 == 0
