"""Statement-coverage estimate for environments without coverage.py.

CI measures coverage with pytest-cov; this script produces the local
*baseline* number recorded in ``benchmarks/coverage_baseline.json``
(the number the CI gate is derived from) using only the standard
library: an AST pass enumerates statement lines per source file, and a
``sys.settrace`` hook records which of them execute while the tier-1
suite runs.

The estimate tracks coverage.py closely but not exactly (decorator and
multi-line-statement accounting differ slightly), which is why the CI
gate subtracts a two-point regression allowance from the recorded
baseline rather than pinning it.

Usage::

    PYTHONPATH=src python benchmarks/measure_coverage.py [pytest args]
"""

from __future__ import annotations

import ast
import json
import pathlib
import sys
import threading

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
OUTPUT = pathlib.Path(__file__).resolve().parent / "coverage_baseline.json"


def statement_lines(path: pathlib.Path) -> set[int]:
    """First lines of every statement in a module (coverage.py's unit)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            lines.add(node.lineno)
    return lines


def collect_targets() -> dict[str, set[int]]:
    targets: dict[str, set[int]] = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        targets[str(path)] = statement_lines(path)
    return targets


def main(argv: list[str]) -> int:
    import pytest

    targets = collect_targets()
    prefix = str(SRC_ROOT)
    executed: dict[str, set[int]] = {name: set() for name in targets}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None  # skip line-tracing outside src/repro entirely
        hits = executed.get(filename)
        if hits is None:
            return None

        def line_tracer(frame, event, arg):
            if event == "line":
                hits.add(frame.f_lineno)
            return line_tracer

        if event == "call":
            hits.add(frame.f_lineno)  # the def line itself
        return line_tracer

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(argv or ["-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    # Import-time execution (module/class bodies) is attributed by the
    # tracer too, since imports happen while the hook is installed.
    per_file = {}
    total_stmts = total_hit = 0
    for name, stmts in sorted(targets.items()):
        hit = len(stmts & executed[name])
        total_stmts += len(stmts)
        total_hit += hit
        rel = str(pathlib.Path(name).relative_to(SRC_ROOT.parent))
        per_file[rel] = {
            "statements": len(stmts),
            "executed": hit,
            "percent": round(100.0 * hit / len(stmts), 1) if stmts else 100.0,
        }

    percent = round(100.0 * total_hit / total_stmts, 1) if total_stmts else 0.0
    summary = {
        "method": "stdlib settrace + AST statement lines (see this script)",
        "pytest_args": argv or ["-q"],
        "total_statements": total_stmts,
        "executed_statements": total_hit,
        "percent": percent,
        "files": per_file,
    }
    OUTPUT.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(f"\ncoverage estimate: {percent}% "
          f"({total_hit}/{total_stmts} statements) -> {OUTPUT}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
