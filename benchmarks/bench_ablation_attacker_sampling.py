"""Ablation B: detection probability vs attacker credential sampling.

Section 7.3: "The odds of detection are inversely proportional to the
percentage of email accounts tested."  The sweep breaches the same site
across many seeded trials while the attacker tests only a fraction of
the recovered haul, and reports the measured detection rate per
fraction.
"""

import pytest

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.breach import BreachEvent, BreachMethod, execute_breach
from repro.attacker.checker import CredentialChecker
from repro.attacker.cracking import crack_records
from repro.attacker.profiles import CheckerArchetype, CheckerProfile
from repro.core.campaign import RegistrationCampaign
from repro.core.monitor import CompromiseMonitor
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.util.rngtree import RngTree
from repro.util.tables import render_table
from repro.util.timeutil import DAY

FRACTIONS = (1.0, 0.5, 0.25, 0.1)
TRIALS = 25


def one_trial(test_fraction: float, seed: int) -> bool:
    system = TripwireSystem(seed=seed, population_size=25)
    system.crawler.config.system_error_rate = 0.0
    system.provision_identities(25, PasswordClass.HARD)
    system.provision_identities(12, PasswordClass.EASY)
    campaign = RegistrationCampaign(system)
    campaign.run_batch(system.population.alexa_top(18))
    target = None
    for attempt in campaign.exposed_attempts():
        site = system.population.site_by_host(attempt.site_host)
        if site and site.accounts.lookup(attempt.identity.email_address):
            target = site
            break
    if target is None:
        return False
    target.seed_organic_accounts(40)
    when = system.clock.now() + 5 * DAY
    cracked = crack_records(
        execute_breach(target, BreachEvent(target.spec.host, when,
                                           BreachMethod.ONLINE_CAPTURE)),
        when,
    )
    botnet = BotnetProxyNetwork(system.whois, system.tree.child("botnet").rng())
    checker = CredentialChecker(system.provider, botnet, system.queue,
                                RngTree(seed).child("checker").rng(),
                                test_fraction=test_fraction)
    profile = CheckerProfile(archetype=CheckerArchetype.VERIFIER,
                             initial_delay_days=3, session_count=1,
                             period_days=5, multi_ip_burst_prob=0.0,
                             hammer_prob=0.0)
    checker.launch(cracked, profile)
    monitor = CompromiseMonitor(system.pool, system.control_locals,
                                system.provider.domain)
    for _ in range(2):
        system.queue.run_until(system.clock.now() + 30 * DAY)
        monitor.ingest_dump(system.provider.collect_login_dump())
    return target.spec.host in monitor.detections


@pytest.mark.benchmark(group="ablations")
def test_ablation_attacker_sampling(benchmark, record):
    def sweep():
        return {
            fraction: sum(one_trial(fraction, 7000 + 31 * t) for t in range(TRIALS))
            for fraction in FRACTIONS
        }

    detected = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{fraction:.0%}", f"{count}/{TRIALS}", f"{count / TRIALS:.0%}"]
        for fraction, count in detected.items()
    ]
    record("ablation_attacker_sampling", render_table(
        ["Haul fraction tested", "Detected", "Rate"], rows,
        title="Ablation B: detection odds vs attacker sampling rate (§7.3)",
    ))

    # Detection declines as the attacker samples less (allowing noise).
    assert detected[1.0] >= detected[0.25]
    assert detected[1.0] >= detected[0.1]
    assert detected[1.0] >= TRIALS * 0.5
