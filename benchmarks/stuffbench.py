"""Credential-stuffing throughput bench — writes ``BENCH_10.json``.

Registers benign populations at the 10^4/10^5/10^6 strata (10^6 rides
behind ``--slow``; ``--quick`` keeps only 10^4), breaches a sequence
of sites against the cross-site reuse model, and replays the same
planned waves through both dispatch paths of the
:class:`~repro.attacker.stuffing.StuffingEngine`:

- **per-event**: ``EmailProvider.attempt_login`` once per stuffed
  credential — the scalar oracle;
- **batched**: the same wave columns through
  ``EmailProvider.attempt_logins``.

Stuffing traffic is the batch engine's worst historical case — it is
failure-heavy (every non-reuser is a BAD_PASSWORD), which the clean-
failure vectorized commit now absorbs instead of replaying row by row.

Throughput is **recorded, never gated** — logins/sec is a property of
the machine (recorded as ``cpu_count``).  The hard assertions are
correctness: identical per-event result codes, identical provider
worlds (telemetry, states, throttle, windows, first IPs) and identical
dispatch-independent wave records between the two engines.

Run from the repo root::

    PYTHONPATH=src python benchmarks/stuffbench.py          # 10^4 + 10^5
    PYTHONPATH=src python benchmarks/stuffbench.py --slow   # adds 10^6
    PYTHONPATH=src python benchmarks/stuffbench.py --quick  # 10^4 only
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import sys
import time

from repro.attacker.breach import BreachMethod
from repro.attacker.stuffing import StuffingEngine, build_benign_corpus
from repro.email_provider.provider import EmailProvider
from repro.identity.reuse import CrossSiteReuseModel
from repro.sim.clock import SimClock
from repro.traffic import BenignPopulation
from repro.util.rngtree import RngTree
from repro.util.tables import render_table
from repro.util.timeutil import DAY

from _output import write_json, write_text

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_INDEX = 10
TRAJECTORY_PATH = REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"

SEED = 3023
START = 1_400_000_000
STRATA = (10_000, 100_000)
QUICK_STRATA = (10_000,)
SLOW_STRATA = (1_000_000,)
#: Stuffed login events targeted per stratum (across all waves).
TARGET_EVENTS = 240_000
QUICK_EVENTS = 48_000
#: Breach waves per campaign; spaced a sim-day apart so each wave's
#: throttle state is evictable (past window + lockout) before the next.
WAVES = 4
WAVE_SPACING = DAY
#: Password-reuse behavior of the population under attack.
EXACT_RATE = 0.3
DERIVE_RATE = 0.3
CRACK_RATE = 0.6


def site_density(users: int, events: int) -> float:
    """Membership density sized so the campaign hits ~``events``."""
    return min(0.9, max(0.01, events / (WAVES * users)))


def build_model(users: int, events: int) -> CrossSiteReuseModel:
    return CrossSiteReuseModel.from_tree(
        RngTree(SEED),
        exact_rate=EXACT_RATE,
        derive_rate=DERIVE_RATE,
        site_density=site_density(users, events),
    )


def build_world(users: int, population: BenignPopulation):
    """One provider with the benign haystack registered."""
    provider = EmailProvider(
        "bench.example", SimClock(START), RngTree(SEED), retention_days=60
    )
    population.register_with(provider)
    assert provider.total_account_count() == users
    return provider


def plan_campaign(engine: StuffingEngine, model, users: int):
    """The full campaign, planned before any dispatch: one corpus and
    one wave of dispatch-ready columns per breached site.

    Planning is dispatch-independent (and cheap next to authentication),
    so both engines replay byte-for-byte the same columns.
    """
    waves = []
    for k in range(WAVES):
        method = (
            BreachMethod.ONLINE_CAPTURE if k % 2 == 0 else BreachMethod.DB_DUMP
        )
        corpus = build_benign_corpus(
            model,
            users,
            site_rank=3 + 7 * k,
            site_host=f"breached{k}.example",
            method=method,
            wave=k,
            crack_rate=CRACK_RATE,
        )
        waves.append(engine.plan_wave(corpus))
    return waves


def run_campaign(provider, engine, waves, batched: bool):
    """Dispatch every wave; returns (seconds, results, wave records).

    The timed region is what a serve campaign pays per wave: the
    pre-wave housekeeping eviction plus authentication of every
    candidate column.  Identical clock/eviction schedule either way.
    """
    clock = provider._clock
    records = []
    all_results = bytearray()
    started = time.perf_counter()
    for wave in waves:
        clock.advance_to(START + (wave.wave + 1) * WAVE_SPACING)
        provider.evict_expired()
        results = bytearray()
        for batch in wave.batches:
            results.extend(engine.dispatch_batch(batch, batched))
        records.append(engine.collect(wave, results))
        all_results.extend(results)
    return time.perf_counter() - started, all_results, records


def world_fingerprint(provider: EmailProvider) -> dict:
    """Everything the equivalence contract compares, detached from the
    provider so the account table can be freed between engine runs."""
    return {
        "telemetry": provider.telemetry.columns(),
        "states": bytes(provider._table.states),
        "throttle": dict(provider._throttle),
        "windows": provider.login_window_snapshot(),
        "first_ips": bytes(provider._ip_first),
    }


def run_engine(users, population, model, batched: bool):
    provider = build_world(users, population)
    engine = StuffingEngine(provider, population, model, RngTree(SEED + 1))
    waves = plan_campaign(engine, model, users)

    # Freeze the built world out of the cyclic collector for the timed
    # run (same rationale and policy as loginbench: a full collection
    # scanning 10^6 static account rows measures the collector, not
    # the engines; both dispatch paths get the identical treatment).
    gc.collect()
    gc.freeze()
    seconds, results, records = run_campaign(provider, engine, waves, batched)
    fingerprint = world_fingerprint(provider)
    gc.unfreeze()
    del provider, engine, waves
    gc.collect()
    return seconds, results, records, fingerprint


def warm_engines() -> None:
    """One throwaway campaign through both paths before any timing
    (numpy's lazy imports and first-call specialization)."""
    users = 1_000
    population = BenignPopulation(users)
    model = build_model(users, 2_000)
    for batched in (False, True):
        run_engine(users, population, model, batched)


def run_stratum(users: int, events: int) -> dict:
    population = BenignPopulation(users)
    model = build_model(users, events)

    # One provider alive at a time (run_engine frees each world before
    # the next): at the 10^6 stratum a second live account table would
    # inflate cache pressure for whichever engine runs second.
    scalar_seconds, scalar_results, scalar_records, scalar_world = run_engine(
        users, population, model, batched=False
    )
    batched_seconds, batched_results, batched_records, batched_world = (
        run_engine(users, population, model, batched=True)
    )

    assert scalar_results == batched_results, "per-event results diverged"
    assert scalar_records == batched_records, "wave records diverged"
    for key in scalar_world:
        assert scalar_world[key] == batched_world[key], (
            f"{key} diverged between engines"
        )

    total_events = len(scalar_results)
    per_event_rate = total_events / scalar_seconds
    batched_rate = total_events / batched_seconds
    return {
        "accounts": users,
        "waves": WAVES,
        "site_density": round(site_density(users, events), 4),
        "events": total_events,
        "successes": scalar_results.count(0),
        "per_event_seconds": round(scalar_seconds, 4),
        "per_event_logins_per_second": round(per_event_rate, 1),
        "batched_seconds": round(batched_seconds, 4),
        "batched_logins_per_second": round(batched_rate, 1),
        "speedup": round(batched_rate / per_event_rate, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="10^4 stratum only (the CI smoke)")
    parser.add_argument("--slow", action="store_true",
                        help="include the 10^6-account stratum")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_10.json")
    args = parser.parse_args(argv)

    if args.quick:
        strata, events = QUICK_STRATA, QUICK_EVENTS
    else:
        strata = STRATA + (SLOW_STRATA if args.slow else ())
        events = TARGET_EVENTS

    warm_engines()
    runs: dict[str, dict] = {}
    for users in strata:
        runs[str(users)] = run = run_stratum(users, events)
        print(
            f"accounts={users}: per-event "
            f"{run['per_event_logins_per_second']:,.0f} logins/s, batched "
            f"{run['batched_logins_per_second']:,.0f} logins/s "
            f"({run['speedup']}x)",
            file=sys.stderr,
        )

    rows = [
        [
            f"{run['accounts']:,}",
            f"{run['events']:,}",
            f"{run['per_event_logins_per_second']:,.0f}",
            f"{run['batched_logins_per_second']:,.0f}",
            f"{run['speedup']:.2f}x",
        ]
        for run in runs.values()
    ]
    table = render_table(
        ["Accounts", "Stuffed events", "Per-event logins/s",
         "Batched logins/s", "Speedup"],
        rows,
        title="Credential-stuffing throughput (recorded, never gated)",
    )
    print(table)

    payload = {
        "bench_index": BENCH_INDEX,
        "schema_version": 1,
        "quick": args.quick,
        "slow": args.slow,
        "cpu_count": os.cpu_count() or 1,
        "waves": WAVES,
        "exact_rate": EXACT_RATE,
        "derive_rate": DERIVE_RATE,
        "crack_rate": CRACK_RATE,
        "engines_equivalent": True,
        "runs": runs,
    }
    write_text("stuffbench", table)
    write_json("stuffbench", payload)
    if not args.no_write:
        TRAJECTORY_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {TRAJECTORY_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
