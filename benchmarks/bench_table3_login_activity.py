"""Table 3: number and date range of login activity per account.

Regenerates the per-account statistics: login counts, days between
registration and first access ("Until", paper range 3-639), days since
the last access, provider-frozen flags (paper: 8 of 30 accounts) and
the accessed-span in days.
"""

from repro.analysis.table3 import build_table3, render_table3


def test_table3_login_activity(benchmark, pilot, record):
    rows = benchmark(lambda: build_table3(pilot))
    record("table3_login_activity", render_table3(rows))

    assert len(rows) >= 10  # paper: 30 accessed accounts
    # Both password classes appear among accessed accounts.
    assert {row.password_type for row in rows} == {"hard", "easy"}
    # Login-count diversity: single-shot verifiers and heavy scrapers.
    counts = [row.login_count for row in rows]
    assert min(counts) <= 5
    assert max(counts) >= 20
    # Delays are long, as in the paper (months between registration
    # and first access).
    assert max(row.days_until_first for row in rows) > 100
    # Some but not all accounts get frozen/closed by the provider.
    frozen = sum(1 for row in rows if row.frozen == "Y")
    assert 0 < frozen < len(rows)
    for row in rows:
        assert row.days_accessed >= 0
        assert row.days_since_last >= 0
