"""Section 6.2: the missed-breach post-mortem over a 50-breach sample.

The paper took 50 publicly-reported breaches that Tripwire did *not*
detect and classified why.  This bench runs its own pilot world, then
samples 50 breached sites at which Tripwire holds no working account —
exactly the sites whose breaches it would miss — and applies the same
taxonomy: scale/scope misses dominate (paper: 29 of 50), then technical
limitations (14), then inherent ones (6).
"""

import pytest

from repro.analysis.undetected import MissReason, miss_report, render_miss_report
from repro.core.scenario import PilotScenario, ScenarioConfig

SAMPLE = 50

WORLD = ScenarioConfig(
    seed=88,
    population_size=900,
    seed_list_size=80,
    main_crawl_top=500,  # ranks 500-900 stay outside the corpus
    second_crawl_top=550,
    manual_top=15,
    breach_count=0,  # the study supplies the breach list
    unused_account_count=100,
    control_account_count=3,
)


def run_study():
    result = PilotScenario(WORLD).run()
    system = result.system
    rng = system.tree.child("miss-study").rng()
    population = system.population

    # Sites where Tripwire holds a working account would be *detected*;
    # the §6.2 sample is drawn from everywhere else.
    covered = set()
    for attempt in result.campaign.exposed_attempts():
        site = population.site_by_host(attempt.site_host)
        if site and site.accounts.lookup(attempt.identity.email_address):
            covered.add(attempt.site_host)

    hosts: list[str] = []
    candidates = list(range(1, population.size + 1))
    rng.shuffle(candidates)
    for rank in candidates:
        spec = population.spec_at_rank(rank)
        if spec.host in covered:
            continue
        hosts.append(spec.host)
        if len(hosts) == SAMPLE:
            break
    tally = miss_report(system, result.campaign, set(), hosts)
    return tally


@pytest.mark.benchmark(group="analysis")
def test_undetected_breach_taxonomy(benchmark, record):
    tally = benchmark.pedantic(run_study, rounds=1, iterations=1)
    record("undetected_breaches", render_miss_report(tally))

    assert sum(tally.values()) == SAMPLE
    assert MissReason.DETECTED not in tally  # the sample is missed-only
    by_category: dict[str, int] = {}
    for reason, count in tally.items():
        by_category[reason.category] = by_category.get(reason.category, 0) + count
    # Paper shape over 50 missed breaches: 29 scale/scope, 14 technical,
    # 6 inherent — scale/scope dominates, inherent stays small.
    assert by_category.get("scale/scope", 0) >= SAMPLE * 0.3
    assert by_category.get("technical", 0) >= 3
    assert by_category.get("inherent", 0) <= SAMPLE * 0.3
