"""Benchmark fixtures.

``pilot`` runs one moderate-scale pilot (about 5% of the paper's size)
once per session; the per-table benches then time the analysis builders
against it and write their rendered output to ``benchmarks/output/``.
The end-to-end and ablation benches run their own scenarios.
"""

from __future__ import annotations

import pytest

from _output import OUTPUT_DIR, write_json, write_text
from repro.core.scenario import PilotResult, PilotScenario, ScenarioConfig

__all__ = ["OUTPUT_DIR"]

BENCH_PILOT_CONFIG = ScenarioConfig(
    seed=2017,
    population_size=1500,
    seed_list_size=150,
    main_crawl_top=1250,
    second_crawl_top=1500,
    manual_top=40,
    breach_count=21,
    breach_hard_exposing=11,
    unused_account_count=300,
    control_account_count=6,
)


@pytest.fixture(scope="session")
def pilot() -> PilotResult:
    """The shared pilot run all table/figure benches analyze."""
    return PilotScenario(BENCH_PILOT_CONFIG).run()


@pytest.fixture(scope="session")
def record():
    """Write a rendered table/figure to benchmarks/output/<name>.txt."""

    def _record(name: str, text: str) -> None:
        write_text(name, text)
        print(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Write a machine-readable summary to benchmarks/output/<name>.json."""

    def _record(name: str, payload: dict) -> None:
        print(f"\nwrote {write_json(name, payload)}\n")

    return _record
