"""Table 4: registration eligibility by rank (100-site manual samples).

Surveys 100-site windows at ranks 1 and 1,000 (10,000+ when the bench
population is large enough) and checks the paper's qualitative claims:
~44% non-English on average, and declining registration viability as
rank grows.
"""

from repro.analysis.table4 import average_row, build_table4, render_table4


def test_table4_eligibility(benchmark, pilot, record):
    population = pilot.system.population
    starts = tuple(s for s in (1, 1000, 10000) if s + 99 <= population.size)

    rows = benchmark(lambda: build_table4(population, starts, 100))
    record("table4_eligibility", render_table4(rows))

    assert len(rows) == len(starts)
    avg = average_row(rows)
    # Paper averages: 6.7% load failure, 44.3% non-English,
    # 12.7% no registration, 5.0% ineligible, 31.3% rest.
    assert 0.25 <= avg.non_english <= 0.60
    assert 0.01 <= avg.load_failure <= 0.20
    assert 0.15 <= avg.rest <= 0.55
    for row in rows:
        total = (row.load_failure + row.non_english + row.no_registration
                 + row.ineligible + row.rest)
        assert abs(total - 1.0) < 1e-9
