"""Extension bench: coverage gains from §7.2's proposed improvements.

The paper names two upgrades it never built: multi-language support
("the single greatest improvement to the crawler's coverage") and
search-engine-assisted registration-page discovery (§6.2.2).  This
bench crawls the same ranked batch three ways — baseline, +language
packs, +packs+search — and compares how many sites end up with a
believed-successful registration.
"""

import pytest

from repro.core.campaign import RegistrationCampaign
from repro.core.system import TripwireSystem
from repro.crawler.engine import CrawlerConfig
from repro.identity.passwords import PasswordClass
from repro.search import SearchEngine
from repro.util.tables import render_table

SITES = 250


def coverage(enable_packs: bool, enable_search: bool) -> dict[str, int]:
    config = CrawlerConfig(system_error_rate=0.0)
    if enable_packs:
        config.enabled_languages = frozenset({"de", "es", "fr"})
    system = TripwireSystem(seed=505, population_size=SITES, crawler_config=config)
    if enable_search:
        system.crawler._search = SearchEngine(system.transport)
    system.provision_identities(SITES + 60, PasswordClass.HARD)
    system.provision_identities(SITES // 2 + 30, PasswordClass.EASY)
    campaign = RegistrationCampaign(system, second_hard_probability=0.0)
    campaign.run_batch(system.population.alexa_top(SITES))
    believed = {a.site_host for a in campaign.attempts if a.believed_success}
    valid = set()
    for attempt in campaign.exposed_attempts():
        site = system.population.site_by_host(attempt.site_host)
        if site and site.check_credentials(attempt.identity.email_address,
                                           attempt.identity.password):
            valid.add(attempt.site_host)
    skipped_language = sum(
        1 for a in campaign.attempts if a.outcome.code.value == "not_english"
    )
    return {"believed": len(believed), "valid_sites": len(valid),
            "language_skips": skipped_language}


@pytest.mark.benchmark(group="extensions")
def test_extension_coverage(benchmark, record):
    def sweep():
        return {
            "baseline (paper pilot)": coverage(False, False),
            "+ language packs (de/es/fr)": coverage(True, False),
            "+ packs + search engine": coverage(True, True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, stats["believed"], stats["valid_sites"], stats["language_skips"]]
        for name, stats in results.items()
    ]
    record("extension_coverage", render_table(
        ["Crawler configuration", "Believed-success sites",
         "Sites with valid account", "Language skips"],
        rows, title="Extension coverage over the same top-250 batch (§7.2)",
        align_right=(1, 2, 3),
    ))

    base = results["baseline (paper pilot)"]
    packs = results["+ language packs (de/es/fr)"]
    full = results["+ packs + search engine"]
    # Language packs reduce language skips and increase coverage.
    assert packs["language_skips"] < base["language_skips"]
    assert packs["valid_sites"] >= base["valid_sites"]
    # Search assist adds sites whose pages the homepage hides.
    assert full["valid_sites"] >= packs["valid_sites"]
    assert full["valid_sites"] > base["valid_sites"]
