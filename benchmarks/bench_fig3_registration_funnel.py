"""Figure 3: the registration funnel.

Regenerates the three-panel funnel: ground-truth eligibility of
submitted sites (paper: 63.8% ineligible), crawler outcome shares on
sites it understood, and estimated success on eligible sites (paper:
~18.8%).  The shape targets are orderings, not absolute numbers.
"""

from repro.analysis.fig3 import build_fig3, render_fig3


def test_fig3_registration_funnel(benchmark, pilot, record):
    data = benchmark(lambda: build_fig3(pilot))
    record("fig3_registration_funnel", render_fig3(data))

    # Panel 1: the majority of ranked sites are ineligible.
    assert data.ineligible_fraction > 0.5
    # Panel 2: shares form a distribution; failure dominates success.
    total = (data.no_form_fraction + data.system_error_fraction
             + data.fields_missing_fraction + data.heuristics_failed_fraction
             + data.crawler_ok_fraction)
    assert abs(total - 1.0) < 1e-9
    assert data.no_form_fraction > data.crawler_ok_fraction * 0.8
    assert data.crawler_ok_fraction < 0.5
    # Panel 3: the estimate discounts believed success.
    assert 0.0 < data.estimated_success_on_eligible < 0.6
    assert data.estimated_valid_accounts > 0
