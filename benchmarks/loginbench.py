"""Heavy-traffic login bench — writes ``BENCH_8.json``.

Registers benign populations at the 10^4/10^5/10^6 strata (10^6 rides
behind ``--slow``; ``--quick`` keeps only 10^4), streams identical
seeded traffic windows through both login engines, and records
sustained logins/sec:

- **per-event**: ``EmailProvider.attempt_login`` once per attempt, the
  scalar path with its per-call ``clock.now()``/object construction;
- **batched**: ``EmailProvider.attempt_logins`` over the same windows'
  :class:`~repro.email_provider.batch.LoginBatch` columns.

Throughput is **recorded, never gated** — logins/sec is a property of
the machine (recorded as ``cpu_count``).  The hard assertions are
correctness, the equivalence contract the engines live by: identical
per-attempt results, identical telemetry columns, identical account
states and throttle/IP-window state, and the telemetry dump sifting
exactly the monitored accounts out of the haystack.

Run from the repo root::

    PYTHONPATH=src python benchmarks/loginbench.py          # 10^4 + 10^5
    PYTHONPATH=src python benchmarks/loginbench.py --slow   # adds 10^6
    PYTHONPATH=src python benchmarks/loginbench.py --quick  # 10^4 only
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import sys
import time

from repro.email_provider.provider import EmailProvider
from repro.email_provider.telemetry import METHOD_ORDER
from repro.net.ipaddr import IPv4Address
from repro.sim.clock import SimClock
from repro.traffic import BenignPopulation, TrafficGenerator, TrafficProfile
from repro.util.rngtree import RngTree
from repro.util.tables import render_table
from repro.util.timeutil import DAY, HOUR

from _output import write_json, write_text

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_INDEX = 8
TRAJECTORY_PATH = REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"

SEED = 2017
START = 1_400_000_000
STRATA = (10_000, 100_000)
QUICK_STRATA = (10_000,)
SLOW_STRATA = (1_000_000,)
#: Honey accounts provisioned alongside each stratum: the monitored
#: minority the telemetry dump must sift out of the benign haystack.
HONEY_ACCOUNTS = 27
#: Login events authenticated per stratum (across several windows).
TARGET_EVENTS = 240_000
QUICK_EVENTS = 48_000
WINDOW_SECONDS = 6 * HOUR
WINDOWS = 4


def build_provider(users: int, population: BenignPopulation) -> EmailProvider:
    """One provider with the benign haystack plus monitored honey rows."""
    provider = EmailProvider(
        "bench.example", SimClock(START), RngTree(SEED), retention_days=60
    )
    for i in range(HONEY_ACCOUNTS):
        result = provider.provision(
            f"honey.user.{i:02d}", f"Honey User {i}", f"Hny!{i:04d}pass"
        )
        assert result.created
    population.register_with(provider)
    assert provider.account_count() == HONEY_ACCOUNTS
    assert provider.total_account_count() == users + HONEY_ACCOUNTS
    return provider


def generate_windows(users: int, events: int, population: BenignPopulation):
    """The stratum's traffic: ~``events`` logins across WINDOWS windows."""
    logins_per_user_day = events / WINDOWS / users / (WINDOW_SECONDS / DAY)
    generator = TrafficGenerator(
        TrafficProfile(
            users=users,
            logins_per_user_day=logins_per_user_day,
            window_seconds=WINDOW_SECONDS,
        ),
        population,
        RngTree(SEED),
    )
    return [
        generator.window(k, START + (k + 1) * WINDOW_SECONDS)
        for k in range(WINDOWS)
    ]


def run_per_event(provider: EmailProvider, windows) -> tuple[float, bytearray]:
    """Scalar reference: one attempt_login call per generated event."""
    attempt_login = provider.attempt_login
    clock = provider._clock
    results = bytearray()
    started = time.perf_counter()
    for window in windows:
        clock.advance_to(window.close_time)
        for batch in window.batches:
            keys, passwords = batch.keys, batch.passwords
            ips, methods = batch.ips, batch.methods
            for i in range(len(keys)):
                result = attempt_login(
                    keys[i],
                    passwords[i],
                    IPv4Address(ips[i]),
                    METHOD_ORDER[methods[i]],
                )
                results.append(_RESULT_CODES[result])
    return time.perf_counter() - started, results


def run_batched(provider: EmailProvider, windows) -> tuple[float, bytearray]:
    """The vectorized engine over the same windows."""
    attempt_logins = provider.attempt_logins
    clock = provider._clock
    results = bytearray()
    started = time.perf_counter()
    for window in windows:
        clock.advance_to(window.close_time)
        for batch in window.batches:
            results.extend(attempt_logins(batch).results)
    return time.perf_counter() - started, results


def world_fingerprint(provider: EmailProvider) -> dict:
    """Everything the equivalence contract compares, detached from the
    provider so the provider itself (and its account table) can be
    freed between engine runs."""
    return {
        "telemetry": provider.telemetry.columns(),
        "states": bytes(provider._table.states),
        "throttle": dict(provider._throttle),
        "windows": provider.login_window_snapshot(),
        "first_ips": bytes(provider._ip_first),
        "dump": provider.collect_login_dump(),
    }


def assert_equivalent(scalar: dict, batched: dict) -> None:
    """The contract: both engines leave indistinguishable worlds."""
    for key in scalar:
        assert scalar[key] == batched[key], f"{key} diverged between engines"
    for event in scalar["dump"]:
        assert event.local_part.startswith("honey."), (
            "dump leaked a benign (unmonitored) account"
        )


def warm_engines() -> None:
    """One throwaway window through both engines before any timing.

    First use of the vectorized path triggers lazy imports inside
    numpy (``numpy.ma`` et al. resolve on demand) plus first-call
    specialization; a 10^3 warm-up world absorbs those one-time costs
    so neither engine's first timed window pays them.
    """
    users, events = 1_000, 2_000
    population = BenignPopulation(users)
    for runner in (run_per_event, run_batched):
        provider = build_provider(users, population)
        runner(provider, generate_windows(users, events, population))


def run_stratum(users: int, events: int) -> dict:
    population = BenignPopulation(users)

    # One provider alive at a time: at the 10^6 stratum a second live
    # account table inflates cache pressure for whichever engine runs
    # second, so each engine gets the same single-world heap.  Built
    # before the windows so the registered population's ``first_row``
    # is known and the generator ships producer-resolved row columns.
    #
    # The built world is frozen out of the cyclic collector for each
    # timed run (``gc.freeze``, the standard move for a large static
    # heap): a full collection scanning 10^6 immutable account rows
    # costs the same no matter which engine triggered it, so leaving
    # the ballast in measures the collector, not the engines.  GC
    # itself stays enabled — both engines still pay for their own
    # garbage — and both runs get the identical policy.
    provider = build_provider(users, population)
    windows = generate_windows(users, events, population)
    total_events = sum(w.login_count for w in windows)

    gc.collect()
    gc.freeze()
    per_event_seconds, scalar_results = run_per_event(provider, windows)
    scalar_world = world_fingerprint(provider)
    gc.unfreeze()
    del provider
    gc.collect()

    provider = build_provider(users, population)
    gc.collect()
    gc.freeze()
    batched_seconds, batched_results = run_batched(provider, windows)
    batched_world = world_fingerprint(provider)
    gc.unfreeze()
    del provider
    gc.collect()

    assert scalar_results == batched_results, "per-attempt results diverged"
    assert_equivalent(scalar_world, batched_world)

    per_event_rate = total_events / per_event_seconds
    batched_rate = total_events / batched_seconds
    return {
        "accounts": users,
        "events": total_events,
        "successes": scalar_results.count(0),
        "per_event_seconds": round(per_event_seconds, 4),
        "per_event_logins_per_second": round(per_event_rate, 1),
        "batched_seconds": round(batched_seconds, 4),
        "batched_logins_per_second": round(batched_rate, 1),
        "speedup": round(batched_rate / per_event_rate, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="10^4 stratum only (the CI smoke)")
    parser.add_argument("--slow", action="store_true",
                        help="include the 10^6-account stratum")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_8.json")
    args = parser.parse_args(argv)

    if args.quick:
        strata, events = QUICK_STRATA, QUICK_EVENTS
    else:
        strata = STRATA + (SLOW_STRATA if args.slow else ())
        events = TARGET_EVENTS

    warm_engines()
    runs: dict[str, dict] = {}
    for users in strata:
        runs[str(users)] = run = run_stratum(users, events)
        print(
            f"accounts={users}: per-event "
            f"{run['per_event_logins_per_second']:,.0f} logins/s, batched "
            f"{run['batched_logins_per_second']:,.0f} logins/s "
            f"({run['speedup']}x)",
            file=sys.stderr,
        )

    rows = [
        [
            f"{run['accounts']:,}",
            f"{run['events']:,}",
            f"{run['per_event_logins_per_second']:,.0f}",
            f"{run['batched_logins_per_second']:,.0f}",
            f"{run['speedup']:.2f}x",
        ]
        for run in runs.values()
    ]
    table = render_table(
        ["Accounts", "Events", "Per-event logins/s", "Batched logins/s",
         "Speedup"],
        rows,
        title="Batch login throughput (recorded, never gated)",
    )
    print(table)

    payload = {
        "bench_index": BENCH_INDEX,
        "schema_version": 1,
        "quick": args.quick,
        "slow": args.slow,
        "cpu_count": os.cpu_count() or 1,
        "honey_accounts": HONEY_ACCOUNTS,
        "engines_equivalent": True,
        "runs": runs,
    }
    write_text("loginbench", table)
    write_json("loginbench", payload)
    if not args.no_write:
        TRAJECTORY_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {TRAJECTORY_PATH}", file=sys.stderr)
    return 0


def _result_codes() -> dict:
    from repro.email_provider.provider import RESULT_CODES

    return RESULT_CODES


_RESULT_CODES = _result_codes()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
