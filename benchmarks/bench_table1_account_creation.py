"""Table 1: estimates of accounts created by account status.

Regenerates the paper's Table 1 from the shared pilot run: attempted
hard/easy counts per category, sampled manual-login success rates
(with the paper's 98/82/59/7/100% alongside) and the discounted
estimated-valid counts.
"""

from repro.analysis.table1 import build_table1, render_table1
from repro.core.estimation import SuccessEstimator


def test_table1_account_creation(benchmark, pilot, record):
    def regenerate():
        estimator = SuccessEstimator(pilot.system)
        estimates = estimator.estimate(pilot.campaign.exposed_attempts())
        return build_table1(estimates)

    rows = benchmark(regenerate)
    record("table1_account_creation", render_table1(rows))

    by_label = {row.label: row for row in rows}
    verified = by_label["Email verified"]
    ok = by_label["OK submission"]
    bad = by_label["Bad heuristics/Fields missing"]
    # Paper shape: success-rate ordering and the hard-skew of the
    # failure bucket must hold.
    assert verified.success_rate > ok.success_rate > bad.success_rate
    assert verified.success_rate >= 0.85  # paper: 98%
    assert 0.30 <= ok.success_rate <= 0.85  # paper: 59%
    assert bad.success_rate <= 0.25  # paper: 7%
    assert bad.attempted_hard > bad.attempted_easy  # paper: 4,395 vs 122
    assert by_label["Manual"].success_rate == 1.0
    assert by_label["Total"].estimated_total > 0
