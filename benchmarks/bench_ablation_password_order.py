"""Ablation A: hard-first vs simultaneous registration ordering.

Section 6.1.2: "Our methodology only registered for accounts with easy
passwords after it estimated that a hard registration succeeded.  This
biases our results to under-report compromises... Subsequent
invocations of a Tripwire system should avoid this pitfall."

The ablation runs one registration campaign per policy over the same
population and counts sites that end up carrying a *valid* easy-password
account — the accounts most likely to trip on a hashed-database breach.
"""

import pytest

from repro.core.campaign import RegistrationCampaign, RegistrationPolicy
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.util.tables import render_table

SITES = 250


def easy_coverage(policy: RegistrationPolicy) -> tuple[int, int]:
    """(sites with a valid easy account, total attempts) under policy."""
    system = TripwireSystem(seed=404, population_size=SITES)
    system.provision_identities(SITES + 60, PasswordClass.HARD)
    system.provision_identities(SITES + 60, PasswordClass.EASY)
    campaign = RegistrationCampaign(system, policy=policy,
                                    second_hard_probability=0.0)
    campaign.run_batch(system.population.alexa_top(SITES))
    covered = set()
    for attempt in campaign.exposed_attempts():
        if attempt.password_class is not PasswordClass.EASY:
            continue
        site = system.population.site_by_host(attempt.site_host)
        if site and site.check_credentials(attempt.identity.email_address,
                                           attempt.identity.password):
            covered.add(attempt.site_host)
    return len(covered), len(campaign.attempts)


@pytest.mark.benchmark(group="ablations")
def test_ablation_password_order(benchmark, record):
    def run():
        return {policy: easy_coverage(policy) for policy in (
            RegistrationPolicy.HARD_FIRST,
            RegistrationPolicy.SIMULTANEOUS,
        )}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [policy.value, attempts, covered]
        for policy, (covered, attempts) in results.items()
    ]
    record("ablation_password_order", render_table(
        ["Registration policy", "Attempts", "Sites with valid easy account"],
        rows, title="Ablation A: easy-account coverage by registration policy",
        align_right=(1, 2),
    ))

    hard_first = results[RegistrationPolicy.HARD_FIRST][0]
    simultaneous = results[RegistrationPolicy.SIMULTANEOUS][0]
    # The paper's bias: conditioning easy attempts on believed hard
    # success strictly reduces easy coverage.
    assert simultaneous >= hard_first
    assert simultaneous > 0
