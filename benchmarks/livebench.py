"""Flight-recorder overhead bench — writes ``BENCH_9.json``.

A/B runs of the servebench workload (the serial campaign daemon with
benign traffic) with the flight recorder off vs on, interleaved and
min-of-N to shave scheduler noise.  Records:

- wall-clock for each arm and the recorder's overhead percentage
  (the acceptance budget for PR 9 is <= 1% — the per-epoch snapshot
  walks a handful of dicts and writes one small file, which must stay
  invisible next to a crawl dispatch);
- flight-file facts from the recorder arm: snapshot count, file
  bytes, health verdict counts by status.

Wall-clock overhead is **recorded, never gated** in CI (scheduler
noise on shared runners would make it flaky); the full local run
asserts the budget.  The hard assertions both arms must always pass:
the recorder arm's journal events are a superset of the baseline's
(``health.*`` events and nothing else is added), and the flight file
parses with one snapshot per epoch.

Run from the repo root::

    PYTHONPATH=src python benchmarks/livebench.py
    PYTHONPATH=src python benchmarks/livebench.py --quick --no-write
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.obs.live import read_flight
from repro.service.daemon import CampaignDaemon
from repro.service.scheduler import ServiceConfig
from repro.util.tables import render_table
from repro.util.timeutil import DAY

from _output import write_json, write_text

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_INDEX = 9
TRAJECTORY_PATH = REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"

#: Overhead budget from the PR-9 acceptance criteria.
OVERHEAD_BUDGET_PERCENT = 1.0


def make_config(quick: bool) -> ServiceConfig:
    scale = dict(top=120, population_size=600) if quick else dict(
        top=400, population_size=1500
    )
    return ServiceConfig(
        epochs=4, epoch_length=30 * DAY, shards=4,
        workers=1, executor="serial",
        traffic_users=500, traffic_logins_per_day=2.0,
        **scale,
    )


def run_arm(config: ServiceConfig, flight_path: pathlib.Path | None):
    started = time.perf_counter()
    result = CampaignDaemon(config, flight_path=flight_path).run()
    return time.perf_counter() - started, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller world, same shape")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_9.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved A/B repeats; min-of-N is "
                             "reported (default 3)")
    args = parser.parse_args(argv)

    import tempfile

    config = make_config(args.quick)
    base_seconds: list[float] = []
    flight_seconds: list[float] = []
    baseline = recorded = None
    flight_path = pathlib.Path(tempfile.mkdtemp()) / "flight.jsonl"
    for i in range(max(1, args.repeats)):
        off, baseline = run_arm(config, None)
        on, recorded = run_arm(config, flight_path)
        base_seconds.append(off)
        flight_seconds.append(on)
        print(f"repeat {i}: off={off:.3f}s on={on:.3f}s", file=sys.stderr)

    best_off = min(base_seconds)
    best_on = min(flight_seconds)
    overhead_percent = 100.0 * (best_on - best_off) / best_off

    # Correctness, every run: the recorder adds health.* events (plus
    # the shard/counter summary lines that tally them) and nothing
    # else to the journal, and flushes one snapshot per epoch.
    def summary(line: str) -> bool:
        return '"record":"shard"' in line or '"counters"' in line

    base_lines = set(baseline.journal.to_jsonl().splitlines())
    flight_lines = set(recorded.journal.to_jsonl().splitlines())
    extra = flight_lines - base_lines
    missing = base_lines - flight_lines
    assert all("health." in line or summary(line) for line in extra), (
        "recorder changed non-health journal lines"
    )
    assert all(summary(line) for line in missing), (
        "recorder dropped journal lines beyond the summary tallies"
    )
    flight = read_flight(flight_path)
    assert len(flight["snapshots"]) == config.epochs
    health_counts: dict[str, int] = {}
    for records in flight["health"].values():
        for record in records:
            health_counts[record["status"]] = (
                health_counts.get(record["status"], 0) + 1
            )

    within_budget = overhead_percent <= OVERHEAD_BUDGET_PERCENT
    if not args.quick:
        assert within_budget, (
            f"flight recorder overhead {overhead_percent:.2f}% exceeds "
            f"{OVERHEAD_BUDGET_PERCENT}% budget"
        )

    rows = [
        ["recorder off (min)", f"{best_off:.3f}", ""],
        ["recorder on (min)", f"{best_on:.3f}", ""],
        ["overhead", f"{best_on - best_off:+.3f}",
         f"{overhead_percent:+.2f}%"],
        ["snapshots flushed", str(len(flight["snapshots"])), ""],
        ["flight bytes", str(flight_path.stat().st_size), ""],
    ]
    table = render_table(
        ["Arm", "Wall s", "Overhead"], rows,
        title=f"Flight-recorder overhead (budget {OVERHEAD_BUDGET_PERCENT}%"
              ", recorded; gated on full runs only)",
    )
    print(table)

    payload = {
        "bench_index": BENCH_INDEX,
        "schema_version": 1,
        "quick": args.quick,
        "cpu_count": os.cpu_count() or 1,
        "repeats": max(1, args.repeats),
        "baseline_seconds": [round(s, 4) for s in base_seconds],
        "recorder_seconds": [round(s, 4) for s in flight_seconds],
        "best_baseline_seconds": round(best_off, 4),
        "best_recorder_seconds": round(best_on, 4),
        "overhead_percent": round(overhead_percent, 3),
        "overhead_budget_percent": OVERHEAD_BUDGET_PERCENT,
        "within_budget": within_budget,
        "snapshots": len(flight["snapshots"]),
        "flight_bytes": flight_path.stat().st_size,
        "health_status_counts": dict(sorted(health_counts.items())),
    }
    write_text("livebench", table)
    write_json("livebench", payload)
    if not args.no_write:
        TRAJECTORY_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {TRAJECTORY_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
