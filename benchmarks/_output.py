"""Shared output helpers for the benchmark suite.

Every bench writes rendered tables to ``benchmarks/output/<name>.txt``
and machine-readable summaries to ``benchmarks/output/<name>.json``;
this module is the single place that knows the directory layout and
serialization conventions (trailing newline, sorted keys, 2-space
indent) so individual benches and fixtures don't re-implement them.
"""

from __future__ import annotations

import json
import pathlib

OUTPUT_DIR = pathlib.Path(__file__).resolve().parent / "output"


def write_text(name: str, text: str) -> pathlib.Path:
    """Write a rendered table/figure to ``output/<name>.txt``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_json(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable summary to ``output/<name>.json``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
