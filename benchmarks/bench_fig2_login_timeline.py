"""Figure 2: registration and login activity over time per site.

Regenerates the timeline figure: one row per detected site sorted by
first account login, registration ticks, easy/hard login markers,
per-row login totals, and the shaded Spring-2015 telemetry gap.
"""

from repro.analysis.fig2 import build_fig2, render_fig2
from repro.util.timeutil import LOG_GAP_END, LOG_GAP_START


def test_fig2_login_timeline(benchmark, pilot, record):
    data = benchmark(lambda: build_fig2(pilot))
    record("fig2_login_timeline", render_fig2(data, width=90))

    assert len(data.timelines) == pilot.monitor.site_count()
    # Rows sorted by first login, as in the paper.
    first_logins = [t.first_login for t in data.timelines]
    assert first_logins == sorted(first_logins)
    # Registrations precede logins on every row.
    for timeline in data.timelines:
        assert min(timeline.registrations) <= timeline.first_login
        assert timeline.total_logins >= 1
    # The Spring-2015 gap is plotted.
    assert any(
        start <= LOG_GAP_END and end >= LOG_GAP_START
        for start, end in data.gap_windows
    )
    # Both password classes appear somewhere in the figure.
    assert any(t.easy_logins for t in data.timelines)
    assert any(t.hard_logins for t in data.timelines)
