"""Figure 1: crawler control flow and termination-code distribution.

The paper's Figure 1 is the crawler flow chart; the measurable artifact
here is the distribution of termination codes over the pilot crawl plus
the flow graph's structure (five terminal exits, the per-field fill
loop, and the identity-burn boundary).
"""

from repro.analysis.fig1 import build_fig1, crawler_flow_graph, render_fig1
from repro.crawler.outcomes import TerminationCode


def test_fig1_crawler_flow(benchmark, pilot, record):
    data = benchmark(lambda: build_fig1(pilot.campaign.attempts))
    record("fig1_crawler_flow", render_fig1(data))

    # Every class of exit occurs at pilot scale.
    for code in TerminationCode:
        assert data.counts.get(code, 0) > 0, code
    # Exposure happens only at or past the Figure 1 horizontal line.
    assert data.exposed_by_code.get(TerminationCode.NO_REGISTRATION_FOUND, 0) == 0
    assert data.exposed_by_code.get(TerminationCode.NOT_ENGLISH, 0) == 0
    assert data.exposed_by_code.get(TerminationCode.OK_SUBMISSION, 0) == \
        data.counts[TerminationCode.OK_SUBMISSION]

    graph = crawler_flow_graph()
    terminals = {n for n, d in graph.nodes(data=True) if d["terminal"]}
    assert terminals == {
        "OK submission", "Submission heuristics failed",
        "Required fields missing", "No registration found", "System Error",
    }
