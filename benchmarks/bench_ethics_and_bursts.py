"""Section 3 ethics audit + Section 6.4.2 burstiness, over the shared pilot."""

import pytest

from repro.analysis.bursts import build_burst_report, render_burst_report
from repro.analysis.ethics import audit_load, render_ethics_audit


@pytest.mark.benchmark(group="analysis")
def test_ethics_load_audit(benchmark, pilot, record):
    audit = benchmark(lambda: audit_load(pilot.campaign, pilot.system.transport))
    record("ethics_audit", render_ethics_audit(audit))

    # Section 3's load claims, recomputed rather than asserted.
    assert audit.majority_two_or_fewer
    assert audit.sites_with_more_than_eight_attempts == 0  # no debugging here
    assert audit.max_attempts_per_site <= 4
    # Page loads respect the crawler's ≥3s-per-load discipline, within
    # one second of transport latency.
    assert audit.min_inter_request_gap >= 3


@pytest.mark.benchmark(group="analysis")
def test_attacker_burstiness(benchmark, pilot, record):
    rows = benchmark(lambda: build_burst_report(pilot.monitor))
    record("attacker_bursts", render_burst_report(rows))

    assert rows, "pilot should have accessed accounts to analyze"
    bursty = [r for r in rows if r.has_multi_ip_burst]
    hammering = [r for r in rows if r.has_hammering]
    # Paper: 11 of 30 accounts bursty, 9 hammered — a minority, but
    # clearly present.
    assert len(bursty) >= 1
    assert len(hammering) >= 1
    assert len(bursty) < len(rows)
    # The peak multi-IP burst is in the paper's regime (46 IPs / 10 min).
    assert max(r.peak_ips_in_window for r in rows) >= 5
