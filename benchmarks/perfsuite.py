"""Thin launcher for the perf-regression suite.

The suite itself lives in :mod:`repro.perf.suite` so the ``repro perf``
CLI subcommand and this script share one implementation.  Run it from
the repo root::

    PYTHONPATH=src python benchmarks/perfsuite.py --quick \
        --check benchmarks/perf_baseline.json

See ``--help`` for the bench list, snapshot path and gating budget.
"""

from __future__ import annotations

import sys

from repro.perf.suite import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
