"""Ablation C: provider avoidance and the integrity backstop (§7.3, §4.4).

Two checks on the same scenario machinery:

1. An attacker who never tests credentials at the monitored provider is
   never detected — but forfeits the provider's share of the haul (the
   checker's skip counters quantify the cost).
2. The >100k unused honeypot accounts stay silent through an entire
   pilot: logins appear only on accounts that were registered
   somewhere, which is the evidence chain of Section 4.4.
"""

import pytest

from repro.core.scenario import PilotScenario, ScenarioConfig
from repro.util.tables import render_table

BASE = dict(
    population_size=300,
    seed_list_size=50,
    main_crawl_top=250,
    second_crawl_top=300,
    manual_top=10,
    breach_count=8,
    breach_hard_exposing=4,
    unused_account_count=120,
    control_account_count=4,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_provider_avoidance(benchmark, record):
    def run_both():
        normal = PilotScenario(ScenarioConfig(seed=61, **BASE)).run()
        avoidant = PilotScenario(ScenarioConfig(
            seed=61, avoided_domains=("bigmail.example",), **BASE)).run()
        return normal, avoidant

    normal, avoidant = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ["attacker tests the provider", len(normal.breaches),
         len(normal.detected_hosts), normal.checker.skipped_by_avoidance],
        ["attacker avoids the provider", len(avoidant.breaches),
         len(avoidant.detected_hosts), avoidant.checker.skipped_by_avoidance],
    ]
    record("ablation_evasion", render_table(
        ["Strategy", "Breaches", "Detected", "Credentials forfeited"],
        rows, title="Ablation C: provider avoidance (§7.3)",
        align_right=(1, 2, 3),
    ))

    assert len(normal.detected_hosts) >= 1
    assert len(avoidant.detected_hosts) == 0  # perfect evasion...
    assert avoidant.checker.skipped_by_avoidance > 0  # ...at a price
    # The integrity backstop holds in both worlds.
    assert normal.monitor.alarms == []
    assert avoidant.monitor.alarms == []
