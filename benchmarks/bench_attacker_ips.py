"""Section 6.4.3: attacker login-IP analysis.

Regenerates the in-text numbers: distinct-IP count vs logins (paper:
1,316 IPs over ~1,792 logins), repeated-IP share, the top-country
ranking (paper: RU, CN, US, VN) and the residential/datacenter split.
"""

from repro.analysis.attacker_ips import (
    build_attacker_ip_report,
    render_attacker_ip_report,
)


def test_attacker_ip_analysis(benchmark, pilot, record):
    report = benchmark(lambda: build_attacker_ip_report(pilot))
    record("attacker_ips", render_attacker_ip_report(report))

    assert report.total_logins > report.distinct_ips  # some reuse
    assert report.repeated_ips < report.distinct_ips * 0.5  # mostly fresh
    assert report.residential_ips > report.datacenter_ips
    top_countries = [code for code, _n in report.country_counts[:6]]
    assert "RU" in top_countries  # paper's top country
    methods = dict(report.method_counts)
    assert methods.get("IMAP", 0) == max(methods.values())  # IMAP-dominant
