"""End-to-end pilot wall-time benchmark.

Times one complete (small-scale) pilot: identity provisioning, three
registration batches, breaches, attacker campaigns, dumps, monitoring,
disclosure and estimation.  The assertions re-check the headline
result: real breaches detected, zero false positives.
"""

import pytest

from repro.core.scenario import PilotScenario, ScenarioConfig

SMALL = ScenarioConfig(
    seed=31,
    population_size=350,
    seed_list_size=60,
    main_crawl_top=300,
    second_crawl_top=350,
    manual_top=15,
    breach_count=8,
    breach_hard_exposing=4,
    unused_account_count=80,
    control_account_count=4,
)


@pytest.mark.benchmark(group="end-to-end")
def test_pilot_end_to_end(benchmark, record):
    result = benchmark.pedantic(
        lambda: PilotScenario(SMALL).run(), rounds=1, iterations=1
    )
    summary = "\n".join([
        "End-to-end pilot (small scale):",
        f"  attempts:          {len(result.campaign.attempts)}",
        f"  identities burned: {len(result.campaign.exposed_attempts())}",
        f"  breaches:          {len(result.breaches)}",
        f"  detected:          {len(result.detected_hosts)}",
        f"  integrity alarms:  {len(result.monitor.alarms)}",
        f"  attacker logins:   {result.checker.total_login_attempts}",
    ])
    record("pilot_end_to_end", summary)

    assert result.monitor.alarms == []  # no false positives, ever
    assert result.detected_hosts <= result.breached_hosts
    assert len(result.detected_hosts) >= 1
