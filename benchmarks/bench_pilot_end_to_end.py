"""End-to-end pilot wall-time benchmarks.

Two workloads:

- ``test_pilot_end_to_end`` times one complete (small-scale) pilot:
  identity provisioning, three registration batches, breaches, attacker
  campaigns, dumps, monitoring, disclosure and estimation.  The
  assertions re-check the headline result: real breaches detected,
  zero false positives.
- ``test_pilot_campaign_serial_vs_sharded`` times the registration
  campaign (the crawl-bound phase that dominates a production run) on
  the pilot-scale site list, serial vs a 4-worker process pool, and
  verifies the two produce bit-identical merged results.

Both emit a machine-readable JSON summary alongside the text output.
"""

import os
import time

import pytest

from repro.core.runner import CampaignRunner
from repro.core.scenario import PilotScenario, ScenarioConfig
from repro.core.substrate import WorldShard
from repro.util.rngtree import RngTree

SMALL = ScenarioConfig(
    seed=31,
    population_size=350,
    seed_list_size=60,
    main_crawl_top=300,
    second_crawl_top=350,
    manual_top=15,
    breach_count=8,
    breach_hard_exposing=4,
    unused_account_count=80,
    control_account_count=4,
)

#: Pilot-scale campaign workload for the serial-vs-sharded comparison.
CAMPAIGN_SEED = 31
CAMPAIGN_POPULATION = 350
CAMPAIGN_TOP = 300
CAMPAIGN_SHARDS = 8


@pytest.mark.benchmark(group="end-to-end")
def test_pilot_end_to_end(benchmark, record, record_json):
    began = time.perf_counter()
    result = benchmark.pedantic(
        lambda: PilotScenario(SMALL).run(), rounds=1, iterations=1
    )
    wall = time.perf_counter() - began
    summary = "\n".join([
        "End-to-end pilot (small scale):",
        f"  attempts:          {len(result.campaign.attempts)}",
        f"  identities burned: {len(result.campaign.exposed_attempts())}",
        f"  breaches:          {len(result.breaches)}",
        f"  detected:          {len(result.detected_hosts)}",
        f"  integrity alarms:  {len(result.monitor.alarms)}",
        f"  attacker logins:   {result.checker.total_login_attempts}",
    ])
    record("pilot_end_to_end", summary)
    record_json("pilot_end_to_end", {
        "attempts": len(result.campaign.attempts),
        "identities_burned": len(result.campaign.exposed_attempts()),
        "breaches": len(result.breaches),
        "detected": len(result.detected_hosts),
        "integrity_alarms": len(result.monitor.alarms),
        "attacker_logins": result.checker.total_login_attempts,
        "wall_seconds": wall,
    })

    assert result.monitor.alarms == []  # no false positives, ever
    assert result.detected_hosts <= result.breached_hosts
    assert len(result.detected_hosts) >= 1


def _fingerprint(result) -> list[tuple]:
    return [
        (a.site_host, a.identity.email_local, a.password_class.value,
         a.outcome.code.value, a.outcome.started_at, a.outcome.finished_at)
        for a in result.attempts
    ]


@pytest.mark.benchmark(group="end-to-end")
def test_pilot_campaign_serial_vs_sharded(benchmark, record, record_json):
    """Serial baseline vs 4-worker process pool on the pilot crawl."""
    listing = WorldShard(RngTree(CAMPAIGN_SEED)).build_population(CAMPAIGN_POPULATION)
    sites = listing.alexa_top(CAMPAIGN_TOP)

    def run_with(workers: int, executor: str):
        runner = CampaignRunner(
            seed=CAMPAIGN_SEED,
            population_size=CAMPAIGN_POPULATION,
            shards=CAMPAIGN_SHARDS,
            workers=workers,
            executor=executor,
        )
        began = time.perf_counter()
        result = runner.run(sites)
        return result, time.perf_counter() - began

    serial_result, serial_wall = run_with(1, "serial")
    sharded_result, sharded_wall = benchmark.pedantic(
        lambda: run_with(4, "process"), rounds=1, iterations=1
    )

    # The determinism contract: worker count never changes results.
    assert _fingerprint(sharded_result) == _fingerprint(serial_result)
    assert sharded_result.stats == serial_result.stats
    assert sharded_result.telemetry == serial_result.telemetry

    speedup = serial_wall / sharded_wall if sharded_wall > 0 else float("inf")
    cpu_count = os.cpu_count() or 1
    # The cpu count leads the summary: a 4-worker pool on one core
    # measures pure process overhead, and readers comparing speedups
    # across machines need to see that before any timing number.
    lines = [
        "Pilot campaign, serial vs sharded (8 shards, top "
        f"{CAMPAIGN_TOP} of {CAMPAIGN_POPULATION}):",
        f"  cpu count:       {cpu_count}",
    ]
    single_core_warning = None
    if cpu_count == 1:
        single_core_warning = (
            "only one CPU core visible: the process pool cannot run "
            "shards in parallel, so no speedup should be expected"
        )
        lines.append(f"  WARNING:         {single_core_warning}")
    lines += [
        f"  serial wall:     {serial_wall:.2f}s",
        f"  4-worker wall:   {sharded_wall:.2f}s (process pool)",
        f"  speedup:         {speedup:.2f}x",
        f"  attempts:        {serial_result.stats.attempts}",
    ]
    record("pilot_campaign_serial_vs_sharded", "\n".join(lines))
    payload = {
        "shards": CAMPAIGN_SHARDS,
        "sites": len(sites),
        "serial_wall_seconds": serial_wall,
        "sharded_wall_seconds": sharded_wall,
        "sharded_workers": 4,
        "sharded_executor": "process",
        "speedup": speedup,
        "attempts": serial_result.stats.attempts,
        "cpu_count": cpu_count,
        "results_identical": True,
    }
    if single_core_warning is not None:
        payload["single_core_warning"] = single_core_warning
    record_json("pilot_campaign_serial_vs_sharded", payload)
    # Real parallelism needs real cores; single-core CI boxes only
    # check the determinism contract above.
    if (os.cpu_count() or 1) >= 4:
        assert sharded_wall < serial_wall
