"""Service-mode sustained-throughput bench — writes ``BENCH_6.json``.

Runs the campaign daemon at 1/2/4 workers over the same sim world and
records, per worker count:

- sustained events/sec: crawl attempts + service-stream firings
  divided by total wall-clock;
- per-epoch wall-clock for the crawl dispatch (the persistent warm
  pool is reused across epochs, so later epochs show the steady state
  the daemon actually runs at);
- total wall-clock and the journal digest.

Everything here is **recorded, never gated**: wall-clock ratios are
properties of the machine's core count (recorded as ``cpu_count``).
The one hard assertion is correctness — every worker count must
produce the same journal bytes as the serial reference.

Run from the repo root::

    PYTHONPATH=src python benchmarks/servebench.py
    PYTHONPATH=src python benchmarks/servebench.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import sys
import time

from repro.service.daemon import CampaignDaemon
from repro.service.scheduler import ServiceConfig
from repro.util.tables import render_table
from repro.util.timeutil import DAY

from _output import write_json, write_text

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_INDEX = 6
TRAJECTORY_PATH = REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"

WORKER_COUNTS = (1, 2, 4)


def make_config(quick: bool, workers: int) -> ServiceConfig:
    scale = dict(top=120, population_size=600) if quick else dict(
        top=400, population_size=1500
    )
    return ServiceConfig(
        epochs=4, epoch_length=30 * DAY, shards=4,
        workers=workers,
        executor="serial" if workers == 1 else "process",
        **scale,
    )


def run_once(config: ServiceConfig) -> dict:
    """One daemon run with per-epoch dispatch timings captured."""
    daemon = CampaignDaemon(config)
    epoch_seconds: list[float] = []
    original = daemon._build_runner

    def timed_builder():
        runner = original()
        real_execute = runner.execute

        def execute(plans, **kwargs):
            started = time.perf_counter()
            out = real_execute(plans, **kwargs)
            epoch_seconds.append(time.perf_counter() - started)
            return out

        runner.execute = execute
        return runner

    daemon._build_runner = timed_builder
    started = time.perf_counter()
    result = daemon.run()
    wall = time.perf_counter() - started

    service_events = sum(r.service_events for r in result.reports)
    total_events = len(result.attempts) + service_events
    return {
        "wall_seconds": round(wall, 4),
        "epoch_seconds": [round(s, 4) for s in epoch_seconds],
        "attempts": len(result.attempts),
        "service_events": service_events,
        "events_per_second": round(total_events / wall, 1),
        "journal_sha256": hashlib.sha256(
            result.journal.to_jsonl().encode("utf-8")
        ).hexdigest(),
        "detection_digest": result.detection_digest,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller world, same shape")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_6.json")
    args = parser.parse_args(argv)

    runs: dict[str, dict] = {}
    for workers in WORKER_COUNTS:
        config = make_config(args.quick, workers)
        runs[str(workers)] = run_once(config)
        print(f"workers={workers}: {runs[str(workers)]['wall_seconds']}s "
              f"({runs[str(workers)]['events_per_second']} events/s)",
              file=sys.stderr)

    reference = runs["1"]
    for workers, run in runs.items():
        assert run["journal_sha256"] == reference["journal_sha256"], (
            f"workers={workers} journal diverged from serial reference"
        )
        assert run["detection_digest"] == reference["detection_digest"]

    rows = [
        [
            workers,
            f"{run['wall_seconds']:.2f}",
            f"{run['events_per_second']:.0f}",
            " ".join(f"{s:.2f}" for s in run["epoch_seconds"]),
        ]
        for workers, run in runs.items()
    ]
    table = render_table(
        ["Workers", "Wall s", "Events/s", "Per-epoch dispatch s"],
        rows,
        title="Service-mode sustained throughput (recorded, never gated)",
    )
    print(table)

    cpu_count = os.cpu_count() or 1
    payload = {
        "bench_index": BENCH_INDEX,
        "schema_version": 1,
        "quick": args.quick,
        "cpu_count": cpu_count,
        "journals_identical": True,
        "runs": runs,
    }
    if cpu_count == 1:
        payload["single_core_warning"] = (
            "recorded on a single-core machine; "
            "parallel speedups are meaningless here"
        )
    write_text("servebench", table)
    write_json("servebench", payload)
    if not args.no_write:
        TRAJECTORY_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {TRAJECTORY_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
