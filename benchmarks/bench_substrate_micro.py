"""Micro-benchmarks for the substrate hot paths.

Not a paper artifact — these keep the simulator honest: page rendering
and parsing dominate crawl time, and a full-scale pilot (30k sites)
performs hundreds of thousands of these operations.
"""

import time

import pytest

from repro.core.runner import CampaignRunner
from repro.core.substrate import WorldShard
from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.html.parser import parse_html
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.i18n import ENGLISH
from repro.web.pages import render_registration_page
from repro.web.population import InternetPopulation
from repro.web.spec import SiteSpec


@pytest.mark.benchmark(group="micro")
def test_bench_render_registration_page(benchmark):
    spec = SiteSpec(host="micro.test", rank=10, category="News", language="en",
                    wants_name=True, wants_phone=True, wants_confirm_password=True)
    html = benchmark(lambda: render_registration_page(spec, ENGLISH))
    assert "<form" in html


@pytest.mark.benchmark(group="micro")
def test_bench_parse_registration_page(benchmark):
    spec = SiteSpec(host="micro.test", rank=10, category="News", language="en",
                    wants_name=True, wants_phone=True, wants_confirm_password=True)
    html = render_registration_page(spec, ENGLISH)
    dom = benchmark(lambda: parse_html(html))
    assert dom.find_first("form") is not None


@pytest.mark.benchmark(group="micro")
def test_bench_single_site_crawl(benchmark):
    clock = SimClock()
    transport = Transport(clock)
    population = InternetPopulation(
        RngTree(71), clock, transport, WhoisRegistry(), DnsResolver(), size=5,
        overrides={1: {"bucket": "rest", "host": "crawlme.test",
                       "load_fails": False, "language": "en"}},
    )
    population.site_at_rank(1)
    crawler = RegistrationCrawler(
        transport, CaptchaSolverService(RngTree(72).rng()),
        RngTree(73).rng(), config=CrawlerConfig(system_error_rate=0.0),
    )
    factory = IdentityFactory(RngTree(74))

    def crawl_once():
        identity = factory.create(PasswordClass.HARD)
        return crawler.register_at("http://crawlme.test/", identity)

    outcome = benchmark(crawl_once)
    assert outcome.code is not None


#: Small sharded-campaign workload shared by the workers axis below.
_SHARDED_SEED = 97
_SHARDED_POPULATION = 220
_SHARDED_TOP = 32


@pytest.mark.benchmark(group="sharded-campaign")
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_sharded_campaign_workers(benchmark, record_json, workers):
    """One campaign fan-out per worker count; serial is the baseline.

    Emits ``substrate_sharded_campaign_w<N>.json`` so the serial vs
    sharded wall-clock comparison is machine-readable.
    """
    from repro.util.rngtree import RngTree

    listing = WorldShard(RngTree(_SHARDED_SEED)).build_population(_SHARDED_POPULATION)
    sites = listing.alexa_top(_SHARDED_TOP)
    runner = CampaignRunner(
        seed=_SHARDED_SEED,
        population_size=_SHARDED_POPULATION,
        shards=4,
        workers=workers,
        executor="serial" if workers == 1 else "thread",
    )

    began = time.perf_counter()
    result = benchmark.pedantic(lambda: runner.run(sites), rounds=1, iterations=1)
    wall = time.perf_counter() - began

    record_json(f"substrate_sharded_campaign_w{workers}", {
        "workers": workers,
        "shards": 4,
        "executor": runner.executor,
        "sites": len(sites),
        "attempts": result.stats.attempts,
        "exposed_attempts": result.stats.exposed_attempts,
        "transport_requests": result.telemetry.transport_requests,
        "wall_seconds": wall,
    })
    assert result.stats.sites_considered == len(sites)
